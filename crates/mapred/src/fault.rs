//! Deterministic fault injection for the MapReduce simulator.
//!
//! Hadoop's defining robustness features — per-task retry with backoff,
//! speculative re-execution of stragglers, and whole-node loss — are cost
//! events the paper's plan-quality argument implicitly relies on: every
//! extra MR cycle is another chance to pay for a failed or straggling task.
//! A [`FaultPlan`] makes those events first-class in the simulator while
//! keeping every run bit-for-bit reproducible.
//!
//! ## Determinism
//!
//! Fault decisions are a *pure function* of
//! `(plan seed, job name, task kind, task index, attempt number)` — derived
//! by hashing through the testkit's pinned SplitMix64 mixer — never of
//! worker threads, scheduling order, or wall-clock time. Two consequences:
//!
//! 1. The same plan replays the same faults on every run, on any machine,
//!    at any worker count.
//! 2. Because injected failure probabilities are threshold comparisons
//!    against those fixed hashes, raising a probability only *adds* faults
//!    (every attempt that failed at `p` still fails at `p' > p`), which is
//!    what makes simulated cost monotone in the injected fault rate.
//!
//! ## Bounded retry
//!
//! Attempts per task are capped at [`FaultPlan::max_attempts`] (Hadoop's
//! `mapred.map.max.attempts`, default 4). The plan never injects a failure
//! into a task's final allowed attempt, so recovery always terminates and
//! every chaos run completes with output identical to the fault-free run —
//! the simulator models the *cost* of failure, not job abortion.

use rapida_testkit::rng::splitmix64;

/// Which phase a task attempt belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task (one per input split).
    Map,
    /// A reduce task (one per non-empty partition).
    Reduce,
}

/// The injected outcome of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The attempt runs to completion and commits.
    Success,
    /// The attempt is killed after processing `fraction` of its input
    /// (work wasted, retry follows after backoff). `node_loss` marks
    /// failures injected by a simulated whole-node loss.
    Fail {
        /// Fraction of the attempt's input processed before the kill, in
        /// `[0, 1)`.
        fraction: f64,
        /// Whether this failure models the task's node disappearing.
        node_loss: bool,
    },
    /// The attempt runs to completion but `slowdown`× slower than normal.
    /// With [`FaultPlan::speculation`] on, the engine launches a duplicate
    /// attempt that wins; otherwise the slow attempt commits.
    Straggle {
        /// Slowdown factor (≥ 1) relative to a healthy attempt.
        slowdown: f64,
    },
}

/// A seedable, deterministic fault-injection plan.
///
/// All fields are public; construct with struct-update syntax over
/// [`FaultPlan::new`] or use the [`FaultPlan::chaotic`] preset the chaos
/// suite sweeps.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed deriving every fault decision.
    pub seed: u64,
    /// Per-attempt probability that a map attempt is killed mid-task.
    pub map_fail_p: f64,
    /// Per-attempt probability that a reduce attempt is killed mid-task.
    pub reduce_fail_p: f64,
    /// Per-attempt probability that an attempt straggles.
    pub straggler_p: f64,
    /// Straggler slowdown factor (≥ 1).
    pub straggler_slowdown: f64,
    /// Launch a speculative duplicate for stragglers (Hadoop's
    /// `mapred.map.tasks.speculative.execution`).
    pub speculation: bool,
    /// Maximum attempts per task; the last attempt always succeeds.
    pub max_attempts: usize,
    /// Simulated backoff before the first retry, in seconds; doubles on
    /// every further retry of the same task.
    pub backoff_base_s: f64,
    /// Number of simulated nodes tasks are placed on (round-robin by task
    /// index).
    pub nodes: usize,
    /// If set, the node with this id (mod [`FaultPlan::nodes`]) is lost:
    /// the first attempt of every task placed on it fails wholesale.
    pub lost_node: Option<usize>,
}

impl FaultPlan {
    /// A quiet plan: no faults at all (useful as a baseline carrier).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            map_fail_p: 0.0,
            reduce_fail_p: 0.0,
            straggler_p: 0.0,
            straggler_slowdown: 1.0,
            speculation: true,
            max_attempts: 4,
            backoff_base_s: 2.0,
            nodes: 8,
            lost_node: None,
        }
    }

    /// The aggressive preset the chaos suite sweeps: frequent task kills
    /// and stragglers with speculation on.
    pub fn chaotic(seed: u64) -> Self {
        FaultPlan {
            map_fail_p: 0.35,
            reduce_fail_p: 0.35,
            straggler_p: 0.25,
            straggler_slowdown: 6.0,
            ..FaultPlan::new(seed)
        }
    }

    /// Failures only, no stragglers, probability `p` — the shape whose
    /// simulated cost is provably monotone in `p` (see module docs).
    pub fn failures_only(seed: u64, p: f64) -> Self {
        FaultPlan {
            map_fail_p: p,
            reduce_fail_p: p,
            ..FaultPlan::new(seed)
        }
    }

    /// The pinned per-decision hash: a pure function of the plan seed and
    /// the attempt's coordinates. `salt` separates independent draws for
    /// the same attempt (fail? / fail fraction / straggle?).
    fn hash(&self, job: &str, kind: TaskKind, task: usize, attempt: usize, salt: u64) -> u64 {
        let mut state = self.seed ^ 0x9d89_0e4a_11c9_b3f7;
        for &b in job.as_bytes() {
            state ^= u64::from(b);
            state = splitmix64(&mut state);
        }
        state ^= match kind {
            TaskKind::Map => 0x6d61_70,
            TaskKind::Reduce => 0x7265_64,
        };
        let _ = splitmix64(&mut state);
        state ^= (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let _ = splitmix64(&mut state);
        state ^= (attempt as u64) << 32 | salt;
        splitmix64(&mut state)
    }

    /// Map a hash to a uniform `f64` in `[0, 1)` (top 53 bits, same
    /// construction as `StdRng::unit_f64`).
    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The simulated node a task is placed on.
    pub fn node_of(&self, task: usize) -> usize {
        task % self.nodes.max(1)
    }

    /// Decide the outcome of attempt `attempt` of task `task` — pure,
    /// order-independent, identical on every replay.
    pub fn decide(&self, job: &str, kind: TaskKind, task: usize, attempt: usize) -> Outcome {
        let final_attempt = attempt + 1 >= self.max_attempts.max(1);
        if !final_attempt {
            // Whole-node loss: every task placed on the lost node dies on
            // its first attempt, wholesale (fraction ~1: the node took the
            // attempt's full progress with it).
            if attempt == 0 {
                if let Some(node) = self.lost_node {
                    if self.node_of(task) == node % self.nodes.max(1) {
                        return Outcome::Fail {
                            fraction: 1.0 - f64::EPSILON,
                            node_loss: true,
                        };
                    }
                }
            }
            let fail_p = match kind {
                TaskKind::Map => self.map_fail_p,
                TaskKind::Reduce => self.reduce_fail_p,
            };
            if Self::unit(self.hash(job, kind, task, attempt, 1)) < fail_p {
                return Outcome::Fail {
                    fraction: Self::unit(self.hash(job, kind, task, attempt, 2)),
                    node_loss: false,
                };
            }
        }
        if Self::unit(self.hash(job, kind, task, attempt, 3)) < self.straggler_p {
            return Outcome::Straggle {
                slowdown: self.straggler_slowdown.max(1.0),
            };
        }
        Outcome::Success
    }

    /// Simulated backoff before retry number `retry` (0-based) of a task:
    /// exponential, `backoff_base_s · 2^retry`.
    pub fn backoff_s(&self, retry: usize) -> f64 {
        self.backoff_base_s * 2f64.powi(retry.min(16) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::chaotic(42);
        for task in 0..32 {
            for attempt in 0..4 {
                for kind in [TaskKind::Map, TaskKind::Reduce] {
                    assert_eq!(
                        plan.decide("j", kind, task, attempt),
                        plan.decide("j", kind, task, attempt),
                    );
                }
            }
        }
    }

    #[test]
    fn decisions_vary_with_coordinates() {
        let plan = FaultPlan::chaotic(7);
        // Over many tasks, at chaotic probabilities, all three outcome
        // kinds must appear — and differ across job names.
        let mut fails = 0;
        let mut straggles = 0;
        let mut diffs = 0;
        for task in 0..200 {
            match plan.decide("a", TaskKind::Map, task, 0) {
                Outcome::Fail { .. } => fails += 1,
                Outcome::Straggle { .. } => straggles += 1,
                Outcome::Success => {}
            }
            if plan.decide("a", TaskKind::Map, task, 0) != plan.decide("b", TaskKind::Map, task, 0)
            {
                diffs += 1;
            }
        }
        assert!(fails > 20, "expected ~35% failures, got {fails}/200");
        assert!(straggles > 10, "expected stragglers, got {straggles}/200");
        assert!(diffs > 50, "decisions must depend on the job name");
    }

    #[test]
    fn final_attempt_never_fails() {
        let plan = FaultPlan {
            map_fail_p: 1.0,
            reduce_fail_p: 1.0,
            lost_node: Some(0),
            ..FaultPlan::new(0)
        };
        for task in 0..16 {
            for kind in [TaskKind::Map, TaskKind::Reduce] {
                // Attempts 0..max-1 all fail at p=1; the last may not.
                for attempt in 0..plan.max_attempts - 1 {
                    assert!(matches!(
                        plan.decide("j", kind, task, attempt),
                        Outcome::Fail { .. }
                    ));
                }
                assert!(!matches!(
                    plan.decide("j", kind, task, plan.max_attempts - 1),
                    Outcome::Fail { .. }
                ));
            }
        }
    }

    #[test]
    fn failure_set_is_monotone_in_probability() {
        // Raising the failure probability never un-fails an attempt: the
        // property simulated-cost monotonicity rests on.
        let lo = FaultPlan::failures_only(3, 0.2);
        let hi = FaultPlan::failures_only(3, 0.6);
        for task in 0..200 {
            for attempt in 0..3 {
                if matches!(
                    lo.decide("j", TaskKind::Map, task, attempt),
                    Outcome::Fail { .. }
                ) {
                    assert!(matches!(
                        hi.decide("j", TaskKind::Map, task, attempt),
                        Outcome::Fail { .. }
                    ));
                }
            }
        }
    }

    #[test]
    fn node_loss_kills_exactly_the_lost_nodes_tasks() {
        let plan = FaultPlan {
            lost_node: Some(2),
            ..FaultPlan::new(9)
        };
        for task in 0..64 {
            let first = plan.decide("j", TaskKind::Map, task, 0);
            if plan.node_of(task) == 2 {
                assert!(
                    matches!(first, Outcome::Fail { node_loss: true, .. }),
                    "task {task} on the lost node must die first"
                );
                // The retry lands elsewhere and is not re-killed by the
                // node loss.
                assert!(!matches!(
                    plan.decide("j", TaskKind::Map, task, 1),
                    Outcome::Fail { node_loss: true, .. }
                ));
            } else {
                assert!(!matches!(first, Outcome::Fail { node_loss: true, .. }));
            }
        }
    }

    #[test]
    fn backoff_is_exponential() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.backoff_s(0), 2.0);
        assert_eq!(plan.backoff_s(1), 4.0);
        assert_eq!(plan.backoff_s(2), 8.0);
    }
}
