//! Deterministic fault injection for the MapReduce simulator.
//!
//! Hadoop's defining robustness features — per-task retry with backoff,
//! speculative re-execution of stragglers, and whole-node loss — are cost
//! events the paper's plan-quality argument implicitly relies on: every
//! extra MR cycle is another chance to pay for a failed or straggling task.
//! A [`FaultPlan`] makes those events first-class in the simulator while
//! keeping every run bit-for-bit reproducible.
//!
//! ## Determinism
//!
//! Fault decisions are a *pure function* of
//! `(plan seed, job name, task kind, task index, attempt number)` — derived
//! by hashing through the testkit's pinned SplitMix64 mixer — never of
//! worker threads, scheduling order, or wall-clock time. Two consequences:
//!
//! 1. The same plan replays the same faults on every run, on any machine,
//!    at any worker count.
//! 2. Because injected failure probabilities are threshold comparisons
//!    against those fixed hashes, raising a probability only *adds* faults
//!    (every attempt that failed at `p` still fails at `p' > p`), which is
//!    what makes simulated cost monotone in the injected fault rate.
//!
//! ## Bounded retry
//!
//! Attempts per task are capped at [`FaultPlan::max_attempts`] (Hadoop's
//! `mapred.map.max.attempts`, default 4). The plan never injects a failure
//! into a task's final allowed attempt, so recovery always terminates and
//! every chaos run completes with output identical to the fault-free run —
//! the simulator models the *cost* of failure, not job abortion.

use crate::resilience::Backoff;
use rapida_testkit::rng::splitmix64;

/// Which phase a task attempt belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A map task (one per input split).
    Map,
    /// A reduce task (one per non-empty partition).
    Reduce,
}

/// The injected outcome of one task attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The attempt runs to completion and commits.
    Success,
    /// The attempt is killed after processing `fraction` of its input
    /// (work wasted, retry follows after backoff). `node_loss` marks
    /// failures injected by a simulated whole-node loss.
    Fail {
        /// Fraction of the attempt's input processed before the kill, in
        /// `[0, 1)`.
        fraction: f64,
        /// Whether this failure models the task's node disappearing.
        node_loss: bool,
    },
    /// The attempt runs to completion but `slowdown`× slower than normal.
    /// With [`FaultPlan::speculation`] on, the engine launches a duplicate
    /// attempt that wins; otherwise the slow attempt commits.
    Straggle {
        /// Slowdown factor (≥ 1) relative to a healthy attempt.
        slowdown: f64,
    },
}

/// A seedable, deterministic fault-injection plan.
///
/// All fields are public; construct with struct-update syntax over
/// [`FaultPlan::new`] or use the [`FaultPlan::chaotic`] preset the chaos
/// suite sweeps.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed deriving every fault decision.
    pub seed: u64,
    /// Per-attempt probability that a map attempt is killed mid-task.
    pub map_fail_p: f64,
    /// Per-attempt probability that a reduce attempt is killed mid-task.
    pub reduce_fail_p: f64,
    /// Per-attempt probability that an attempt straggles.
    pub straggler_p: f64,
    /// Straggler slowdown factor (≥ 1).
    pub straggler_slowdown: f64,
    /// Launch a speculative duplicate for stragglers (Hadoop's
    /// `mapred.map.tasks.speculative.execution`).
    pub speculation: bool,
    /// Maximum attempts per task; the last attempt always succeeds.
    pub max_attempts: usize,
    /// Simulated backoff before the first retry, in seconds; doubles on
    /// every further retry of the same task.
    pub backoff_base_s: f64,
    /// Number of simulated nodes tasks are placed on (round-robin by task
    /// index).
    pub nodes: usize,
    /// If set, the node with this id (mod [`FaultPlan::nodes`]) is lost:
    /// the first attempt of every task placed on it fails wholesale.
    pub lost_node: Option<usize>,
    /// Per-(block, replica) probability that reading a DFS block returns a
    /// silently bit-flipped copy (the corruption fault class). Applied on
    /// *read*; storage itself is never mutated, so a clean replica always
    /// exists.
    pub block_corrupt_p: f64,
    /// Per-(task, partition) probability that a map task's spill run for a
    /// partition arrives at the reducer bit-flipped.
    pub spill_corrupt_p: f64,
    /// Per-(job, recovery-attempt) probability that a whole job attempt is
    /// lost at commit time (driver/JobTracker node loss) and must be
    /// recovered at the workflow level. Never fires on the workflow's final
    /// allowed attempt, so probabilistic chaos runs always complete.
    pub job_abort_p: f64,
    /// Deterministic job kill: abort job `index` on its first `kills`
    /// workflow-level attempts — unlike [`Self::job_abort_p`] this is *not*
    /// suppressed on the final allowed attempt, so it can drive a workflow
    /// into its typed [`crate::resilience::WorkflowError`] on purpose.
    pub abort_job: Option<(usize, usize)>,
    /// Simulated replica count for DFS blocks. Corruption is decided per
    /// replica, and the last replica is never corrupted — the storage-side
    /// mirror of "the final attempt never fails", so integrity recovery
    /// always terminates.
    pub replicas: usize,
}

impl FaultPlan {
    /// A quiet plan: no faults at all (useful as a baseline carrier).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            map_fail_p: 0.0,
            reduce_fail_p: 0.0,
            straggler_p: 0.0,
            straggler_slowdown: 1.0,
            speculation: true,
            max_attempts: 4,
            backoff_base_s: 2.0,
            nodes: 8,
            lost_node: None,
            block_corrupt_p: 0.0,
            spill_corrupt_p: 0.0,
            job_abort_p: 0.0,
            abort_job: None,
            replicas: 3,
        }
    }

    /// The aggressive preset the chaos suite sweeps: frequent task kills
    /// and stragglers with speculation on, plus read-path corruption of
    /// blocks and spill runs and occasional whole-job aborts.
    pub fn chaotic(seed: u64) -> Self {
        FaultPlan {
            map_fail_p: 0.35,
            reduce_fail_p: 0.35,
            straggler_p: 0.25,
            straggler_slowdown: 6.0,
            block_corrupt_p: 0.3,
            spill_corrupt_p: 0.25,
            job_abort_p: 0.15,
            ..FaultPlan::new(seed)
        }
    }

    /// Corruption only — bit flips on block and spill reads, nothing else.
    /// The preset the integrity suite sweeps: with checksums on the output
    /// must be byte-identical to fault-free; with checksums off it must
    /// diverge.
    pub fn corrupting(seed: u64) -> Self {
        FaultPlan {
            block_corrupt_p: 0.5,
            spill_corrupt_p: 0.5,
            ..FaultPlan::new(seed)
        }
    }

    /// Failures only, no stragglers, probability `p` — the shape whose
    /// simulated cost is provably monotone in `p` (see module docs).
    pub fn failures_only(seed: u64, p: f64) -> Self {
        FaultPlan {
            map_fail_p: p,
            reduce_fail_p: p,
            ..FaultPlan::new(seed)
        }
    }

    /// The pinned per-decision hash: a pure function of the plan seed and
    /// the attempt's coordinates. `salt` separates independent draws for
    /// the same attempt (fail? / fail fraction / straggle?).
    fn hash(&self, job: &str, kind: TaskKind, task: usize, attempt: usize, salt: u64) -> u64 {
        let mut state = self.seed ^ 0x9d89_0e4a_11c9_b3f7;
        for &b in job.as_bytes() {
            state ^= u64::from(b);
            state = splitmix64(&mut state);
        }
        state ^= match kind {
            TaskKind::Map => 0x6d61_70,
            TaskKind::Reduce => 0x7265_64,
        };
        let _ = splitmix64(&mut state);
        state ^= (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let _ = splitmix64(&mut state);
        state ^= (attempt as u64) << 32 | salt;
        splitmix64(&mut state)
    }

    /// Map a hash to a uniform `f64` in `[0, 1)` (top 53 bits, same
    /// construction as `StdRng::unit_f64`).
    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The simulated node a task is placed on.
    pub fn node_of(&self, task: usize) -> usize {
        task % self.nodes.max(1)
    }

    /// Decide the outcome of attempt `attempt` of task `task` — pure,
    /// order-independent, identical on every replay.
    pub fn decide(&self, job: &str, kind: TaskKind, task: usize, attempt: usize) -> Outcome {
        let final_attempt = attempt + 1 >= self.max_attempts.max(1);
        if !final_attempt {
            // Whole-node loss: every task placed on the lost node dies on
            // its first attempt, wholesale (fraction ~1: the node took the
            // attempt's full progress with it).
            if attempt == 0 {
                if let Some(node) = self.lost_node {
                    if self.node_of(task) == node % self.nodes.max(1) {
                        return Outcome::Fail {
                            fraction: 1.0 - f64::EPSILON,
                            node_loss: true,
                        };
                    }
                }
            }
            let fail_p = match kind {
                TaskKind::Map => self.map_fail_p,
                TaskKind::Reduce => self.reduce_fail_p,
            };
            if Self::unit(self.hash(job, kind, task, attempt, 1)) < fail_p {
                return Outcome::Fail {
                    fraction: Self::unit(self.hash(job, kind, task, attempt, 2)),
                    node_loss: false,
                };
            }
        }
        if Self::unit(self.hash(job, kind, task, attempt, 3)) < self.straggler_p {
            return Outcome::Straggle {
                slowdown: self.straggler_slowdown.max(1.0),
            };
        }
        Outcome::Success
    }

    /// Simulated backoff before retry number `retry` (0-based) of a task:
    /// exponential, `backoff_base_s · 2^min(retry, 16)` — the shared
    /// [`Backoff`] schedule. The exponent clamp saturates the delay rather
    /// than overflowing `f64` range on adversarial retry counts; within the
    /// [`Self::max_attempts`] bound (default 4) the clamp is unreachable,
    /// so ordinary retries see pure doubling.
    pub fn backoff_s(&self, retry: usize) -> f64 {
        Backoff::new(self.backoff_base_s).delay_s(retry)
    }

    /// The pinned hash for non-task fault domains (blocks, spills, job
    /// aborts): a pure function of the plan seed, a domain constant, a name,
    /// and two coordinates — same mixer discipline as [`Self::hash`].
    fn hash_domain(&self, domain: u64, name: &str, a: u64, b: u64) -> u64 {
        let mut state = self.seed ^ domain ^ 0x9d89_0e4a_11c9_b3f7;
        for &byte in name.as_bytes() {
            state ^= u64::from(byte);
            state = splitmix64(&mut state);
        }
        state ^= a.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let _ = splitmix64(&mut state);
        state ^= (b << 32) | domain;
        splitmix64(&mut state)
    }

    /// Does this plan inject any read-path corruption at all? Engines skip
    /// the checksum machinery entirely when nothing can flip a bit.
    pub fn corrupts(&self) -> bool {
        self.block_corrupt_p > 0.0 || self.spill_corrupt_p > 0.0
    }

    /// Decide whether reading replica `replica` of block `block` of dataset
    /// `dataset` returns a corrupted copy; `Some(h)` carries the hash that
    /// picks the flipped bit. The last replica is never corrupted (see
    /// [`Self::replicas`]), so a verify-and-re-read loop always terminates
    /// on clean bytes.
    pub fn corrupt_block(&self, dataset: &str, block: usize, replica: usize) -> Option<u64> {
        if replica + 1 >= self.replicas.max(1) {
            return None;
        }
        let h = self.hash_domain(0xb10c, dataset, block as u64, replica as u64);
        if Self::unit(h) < self.block_corrupt_p {
            Some(self.hash_domain(0xb117, dataset, block as u64, replica as u64))
        } else {
            None
        }
    }

    /// Decide whether map task `task`'s spill run for reduce partition
    /// `partition` arrives corrupted; `Some(h)` carries the bit-pick hash.
    pub fn corrupt_spill(&self, job: &str, task: usize, partition: usize) -> Option<u64> {
        let h = self.hash_domain(0x5b11, job, task as u64, partition as u64);
        if Self::unit(h) < self.spill_corrupt_p {
            Some(self.hash_domain(0x5b17, job, task as u64, partition as u64))
        } else {
            None
        }
    }

    /// Decide whether job `index` (`job` names it) is lost wholesale on
    /// workflow-level recovery attempt `recovery`. The probabilistic path is
    /// suppressed when `final_attempt` is set (the workflow's last allowed
    /// attempt always commits); the explicit [`Self::abort_job`] kill is
    /// not, so tests and benches can exhaust the budget deliberately.
    pub fn decide_job_abort(
        &self,
        job: &str,
        index: usize,
        recovery: usize,
        final_attempt: bool,
    ) -> bool {
        if let Some((target, kills)) = self.abort_job {
            return index == target && recovery < kills;
        }
        if final_attempt {
            return false;
        }
        Self::unit(self.hash_domain(0xab07, job, index as u64, recovery as u64)) < self.job_abort_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::chaotic(42);
        for task in 0..32 {
            for attempt in 0..4 {
                for kind in [TaskKind::Map, TaskKind::Reduce] {
                    assert_eq!(
                        plan.decide("j", kind, task, attempt),
                        plan.decide("j", kind, task, attempt),
                    );
                }
            }
        }
    }

    #[test]
    fn decisions_vary_with_coordinates() {
        let plan = FaultPlan::chaotic(7);
        // Over many tasks, at chaotic probabilities, all three outcome
        // kinds must appear — and differ across job names.
        let mut fails = 0;
        let mut straggles = 0;
        let mut diffs = 0;
        for task in 0..200 {
            match plan.decide("a", TaskKind::Map, task, 0) {
                Outcome::Fail { .. } => fails += 1,
                Outcome::Straggle { .. } => straggles += 1,
                Outcome::Success => {}
            }
            if plan.decide("a", TaskKind::Map, task, 0) != plan.decide("b", TaskKind::Map, task, 0)
            {
                diffs += 1;
            }
        }
        assert!(fails > 20, "expected ~35% failures, got {fails}/200");
        assert!(straggles > 10, "expected stragglers, got {straggles}/200");
        assert!(diffs > 50, "decisions must depend on the job name");
    }

    #[test]
    fn final_attempt_never_fails() {
        let plan = FaultPlan {
            map_fail_p: 1.0,
            reduce_fail_p: 1.0,
            lost_node: Some(0),
            ..FaultPlan::new(0)
        };
        for task in 0..16 {
            for kind in [TaskKind::Map, TaskKind::Reduce] {
                // Attempts 0..max-1 all fail at p=1; the last may not.
                for attempt in 0..plan.max_attempts - 1 {
                    assert!(matches!(
                        plan.decide("j", kind, task, attempt),
                        Outcome::Fail { .. }
                    ));
                }
                assert!(!matches!(
                    plan.decide("j", kind, task, plan.max_attempts - 1),
                    Outcome::Fail { .. }
                ));
            }
        }
    }

    #[test]
    fn failure_set_is_monotone_in_probability() {
        // Raising the failure probability never un-fails an attempt: the
        // property simulated-cost monotonicity rests on.
        let lo = FaultPlan::failures_only(3, 0.2);
        let hi = FaultPlan::failures_only(3, 0.6);
        for task in 0..200 {
            for attempt in 0..3 {
                if matches!(
                    lo.decide("j", TaskKind::Map, task, attempt),
                    Outcome::Fail { .. }
                ) {
                    assert!(matches!(
                        hi.decide("j", TaskKind::Map, task, attempt),
                        Outcome::Fail { .. }
                    ));
                }
            }
        }
    }

    #[test]
    fn node_loss_kills_exactly_the_lost_nodes_tasks() {
        let plan = FaultPlan {
            lost_node: Some(2),
            ..FaultPlan::new(9)
        };
        for task in 0..64 {
            let first = plan.decide("j", TaskKind::Map, task, 0);
            if plan.node_of(task) == 2 {
                assert!(
                    matches!(first, Outcome::Fail { node_loss: true, .. }),
                    "task {task} on the lost node must die first"
                );
                // The retry lands elsewhere and is not re-killed by the
                // node loss.
                assert!(!matches!(
                    plan.decide("j", TaskKind::Map, task, 1),
                    Outcome::Fail { node_loss: true, .. }
                ));
            } else {
                assert!(!matches!(first, Outcome::Fail { node_loss: true, .. }));
            }
        }
    }

    #[test]
    fn backoff_is_exponential() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.backoff_s(0), 2.0);
        assert_eq!(plan.backoff_s(1), 4.0);
        assert_eq!(plan.backoff_s(2), 8.0);
    }

    #[test]
    fn backoff_clamp_matches_the_shared_schedule_and_saturates() {
        // The `min(retry, 16)` clamp: beyond retry 16 the delay is constant
        // and finite, and the plan's schedule is exactly the shared
        // `resilience::Backoff` with the same base — one schedule, two
        // consumers.
        let plan = FaultPlan {
            backoff_base_s: 3.0,
            ..FaultPlan::new(0)
        };
        let shared = Backoff::new(3.0);
        for retry in [0usize, 1, 5, 15, 16, 17, 100, usize::MAX] {
            assert_eq!(plan.backoff_s(retry), shared.delay_s(retry));
            assert!(plan.backoff_s(retry).is_finite());
        }
        assert_eq!(plan.backoff_s(16), 3.0 * 65536.0);
        assert_eq!(plan.backoff_s(17), plan.backoff_s(16), "clamp saturates");
    }

    #[test]
    fn backoff_is_jitterless_and_retry_count_determined() {
        // Backoff depends only on (base, retry number): no RNG, no worker
        // or scheduling input. Summing a fixed retry multiset therefore
        // yields bit-identical totals in any accumulation order — the
        // property that makes the ledger's `backoff_s` worker-count
        // independent.
        let plan = FaultPlan::chaotic(11);
        let retries = [0usize, 1, 2, 0, 3, 1, 0, 2];
        let forward: f64 = retries.iter().map(|&r| plan.backoff_s(r)).sum();
        let reverse: f64 = retries.iter().rev().map(|&r| plan.backoff_s(r)).sum();
        assert_eq!(forward.to_bits(), reverse.to_bits());
        for &r in &retries {
            assert_eq!(plan.backoff_s(r), plan.backoff_s(r));
        }
    }

    #[test]
    fn block_corruption_is_pure_and_spares_the_last_replica() {
        let plan = FaultPlan::corrupting(5);
        let mut fired = 0;
        for block in 0..64 {
            for replica in 0..plan.replicas {
                let d = plan.corrupt_block("vp_x", block, replica);
                assert_eq!(d, plan.corrupt_block("vp_x", block, replica));
                if replica + 1 >= plan.replicas {
                    assert!(d.is_none(), "last replica must never corrupt");
                } else if d.is_some() {
                    fired += 1;
                }
            }
        }
        assert!(fired > 20, "p=0.5 over 128 draws must fire often: {fired}");
        // Decisions vary with the dataset name.
        let diff = (0..64)
            .filter(|&b| plan.corrupt_block("vp_x", b, 0) != plan.corrupt_block("vp_y", b, 0))
            .count();
        assert!(diff > 10, "corruption must key on the dataset name");
    }

    #[test]
    fn corruption_set_is_monotone_in_probability() {
        let lo = FaultPlan {
            block_corrupt_p: 0.2,
            spill_corrupt_p: 0.2,
            ..FaultPlan::new(3)
        };
        let hi = FaultPlan {
            block_corrupt_p: 0.6,
            spill_corrupt_p: 0.6,
            ..FaultPlan::new(3)
        };
        for i in 0..128 {
            if lo.corrupt_block("d", i, 0).is_some() {
                assert!(hi.corrupt_block("d", i, 0).is_some());
            }
            if lo.corrupt_spill("j", i, 1).is_some() {
                assert!(hi.corrupt_spill("j", i, 1).is_some());
            }
        }
    }

    #[test]
    fn probabilistic_aborts_spare_the_final_attempt() {
        let plan = FaultPlan {
            job_abort_p: 1.0,
            ..FaultPlan::new(4)
        };
        for i in 0..8 {
            assert!(plan.decide_job_abort("j", i, 0, false));
            assert!(
                !plan.decide_job_abort("j", i, 3, true),
                "final workflow attempt must always commit"
            );
        }
    }

    #[test]
    fn explicit_abort_kills_exactly_the_scheduled_attempts() {
        let plan = FaultPlan {
            abort_job: Some((2, 2)),
            ..FaultPlan::new(0)
        };
        assert!(plan.decide_job_abort("j", 2, 0, false));
        assert!(plan.decide_job_abort("j", 2, 1, true), "explicit kill ignores finality");
        assert!(!plan.decide_job_abort("j", 2, 2, false), "kill budget spent");
        assert!(!plan.decide_job_abort("j", 1, 0, false), "other jobs untouched");
    }
}
