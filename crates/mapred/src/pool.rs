//! A work-stealing task pool for the engine's map and reduce phases.
//!
//! The old engine popped tasks off one shared `Mutex<Vec<_>>`; every pop
//! serialized all workers on a single lock, and a worker finishing early had
//! no way to relieve a loaded one beyond racing for the next pop. This pool
//! gives each worker its own deque, seeded with a contiguous chunk of the
//! task list; a worker drains its own deque from the front and, when empty,
//! steals the back half of a victim's deque — the classic Cilk/Chase-Lev
//! shape, built here on `std::thread::scope` and plain `Mutex<VecDeque>`
//! (contention is per-victim and steals are rare, so the simple lock is
//! cheaper than an atomic deque would be to maintain).
//!
//! ## Determinism
//!
//! Task execution *order* is racy by design, but the pool's results are
//! returned sorted by task index, and the engine only ever derives output
//! from per-task results in index order — so data order is identical at any
//! worker count, with any steal interleaving.
//!
//! ## Busy-time accounting
//!
//! Each worker accumulates the CPU time (thread CPU clock, not wall time)
//! it spends *inside* task bodies into [`PoolStats::busy_ns`]. On an
//! undersubscribed machine the per-worker maximum ("busy makespan")
//! approximates the phase's parallel wall time; on an oversubscribed or
//! timeshared machine it still measures how evenly the pool spread the
//! work, which is what the scaling benchmark reports (see
//! `crates/bench/benches/scale.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What one pool invocation observed about itself.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Per-worker CPU nanoseconds spent inside task bodies.
    pub busy_ns: Vec<u64>,
    /// Tasks moved between worker deques by steals.
    pub steals: u64,
}

impl PoolStats {
    /// The busiest worker's CPU time — the phase's critical path under
    /// perfect parallelism.
    pub fn makespan_ns(&self) -> u64 {
        self.busy_ns.iter().copied().max().unwrap_or(0)
    }

    /// Total CPU time across all workers — what a serial run would take.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }
}

/// Current thread's CPU clock in nanoseconds (Linux
/// `CLOCK_THREAD_CPUTIME_ID`). Unlike wall time, this is immune to
/// timeslicing: on a 1-core machine running 4 workers, each worker's wall
/// time covers all four, but its CPU clock only advances while it runs.
#[cfg(target_os = "linux")]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime writes one Timespec; the layout above matches
    // the 64-bit Linux ABI struct timespec (two 64-bit fields), and std
    // already links libc.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Fallback for non-Linux hosts: a process-wide monotonic clock. Busy times
/// then include timeslicing noise, but every consumer of these numbers
/// treats them as measurements, never as part of the determinism contract.
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Run `tasks` across `workers` work-stealing threads and return each
/// task's result, sorted by task index, plus the pool's stats.
///
/// `f` is called as `f(task_index, task)`. Results are independent of
/// worker count and scheduling: the output vector is always in task order.
pub fn run_tasks<T, R, F>(workers: usize, tasks: Vec<T>, f: F) -> (Vec<R>, PoolStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = workers.max(1);
    let n = tasks.len();
    if n == 0 {
        return (
            Vec::new(),
            PoolStats {
                busy_ns: vec![0; workers],
                steals: 0,
            },
        );
    }

    // Seed each deque with a contiguous chunk: task i goes to worker
    // i / ceil(n / workers). Contiguous chunks keep the initial assignment
    // aligned with data locality (adjacent splits, adjacent partitions) and
    // make back-half steals grab the work farthest from the victim's
    // cursor.
    let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    {
        let per = n.div_ceil(workers);
        let mut it = tasks.into_iter().enumerate();
        'fill: for q in &mut queues {
            let q = q.get_mut().expect("fresh mutex");
            for _ in 0..per {
                match it.next() {
                    Some(t) => q.push_back(t),
                    None => break 'fill,
                }
            }
        }
    }

    let steals = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let busy: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::with_capacity(workers));
    let queues = &queues;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let steals = &steals;
            let results = &results;
            let busy = &busy;
            let f = &f;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut busy_ns = 0u64;
                loop {
                    let own = queues[w].lock().expect("queue poisoned").pop_front();
                    let Some((idx, t)) = own.or_else(|| steal(queues, w, steals)) else {
                        break;
                    };
                    let t0 = thread_cpu_ns();
                    local.push((idx, f(idx, t)));
                    busy_ns += thread_cpu_ns().saturating_sub(t0);
                }
                results.lock().expect("results poisoned").append(&mut local);
                busy.lock().expect("busy poisoned").push((w, busy_ns));
            });
        }
    });

    let mut indexed = results.into_inner().expect("pool worker panicked");
    debug_assert_eq!(indexed.len(), n, "every task must produce one result");
    // Unique task indices: sort_unstable has no equal elements to reorder.
    indexed.sort_unstable_by_key(|(idx, _)| *idx);

    let mut busy_ns = vec![0u64; workers];
    for (w, ns) in busy.into_inner().expect("busy poisoned") {
        busy_ns[w] = ns;
    }
    (
        indexed.into_iter().map(|(_, r)| r).collect(),
        PoolStats {
            busy_ns,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

/// Steal the back half of some victim's deque into worker `w`'s, returning
/// the first stolen task to run immediately. Scans victims twice before
/// giving up: tasks never spawn tasks, so after two all-empty scans the only
/// remaining work is already executing on other workers and `w` can retire.
fn steal<T>(
    queues: &[Mutex<VecDeque<(usize, T)>>],
    w: usize,
    steals: &AtomicU64,
) -> Option<(usize, T)> {
    let k = queues.len();
    for round in 0..2 {
        for off in 1..k {
            let v = (w + off) % k;
            let mut vq = queues[v].lock().expect("victim queue poisoned");
            let len = vq.len();
            if len == 0 {
                continue;
            }
            let take = len.div_ceil(2);
            let mut grabbed: Vec<(usize, T)> = Vec::with_capacity(take);
            for _ in 0..take {
                grabbed.push(vq.pop_back().expect("len checked"));
            }
            drop(vq);
            // Popped back-to-front; reverse to restore original order.
            grabbed.reverse();
            steals.fetch_add(take as u64, Ordering::Relaxed);
            let mut it = grabbed.into_iter();
            let first = it.next();
            let mut own = queues[w].lock().expect("own queue poisoned");
            for t in it {
                own.push_back(t);
            }
            return first;
        }
        if round == 0 {
            // Between scans, yield once: a steal batch in flight (popped
            // from a victim, not yet in the thief's deque) gets a chance to
            // land where the second scan can see it.
            std::thread::yield_now();
        }
    }
    None
}

/// The type-erased batch body workers execute: `(worker, task_index)`.
type BatchFn = dyn Fn(usize, usize) + Sync;

/// A borrowed `&BatchFn` smuggled across the worker threads as a raw
/// pointer. Soundness rests on the batch protocol: [`PersistentPool::run`]
/// does not return until every worker has bumped `finished` for the batch's
/// epoch, and a worker's last dereference happens before that bump.
#[derive(Clone, Copy)]
struct BatchPtr(*const BatchFn);
unsafe impl Send for BatchPtr {}

struct Board {
    /// Current batch: body pointer + task count. `None` between batches.
    batch: Option<(BatchPtr, usize)>,
    /// Bumped once per posted batch; workers run a batch exactly once.
    epoch: u64,
    /// Workers done with the current batch.
    finished: usize,
    shutdown: bool,
}

struct Shared {
    board: Mutex<Board>,
    work_ready: Condvar,
    batch_done: Condvar,
    /// Task claim cursor for the current batch (reset when posting).
    cursor: AtomicUsize,
    /// Per-worker CPU ns inside task bodies, for the current batch.
    busy: Vec<AtomicU64>,
}

struct PoolInner {
    workers: usize,
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Serializes concurrent `run` callers onto the single job board.
    gate: Mutex<()>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut b = self.shared.board.lock().expect("board poisoned");
            b.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.lock().expect("handles poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

/// A pool with long-lived worker threads, reused across workflow runs.
///
/// [`run_tasks`] spawns and joins a scoped pool per phase — the right
/// default for one-shot workflows, but a serving session executes thousands
/// of phases, and per-phase thread spawn/join becomes pure overhead. This
/// pool keeps `workers` threads parked on a condvar; each [`Self::run`]
/// posts one batch, workers claim task indices from a shared atomic cursor,
/// and the caller blocks until every worker has quiesced.
///
/// Same contract as [`run_tasks`]: results return sorted by task index, so
/// output bytes are independent of scheduling. Differences: no deques and
/// no steals (the atomic cursor load-balances at task granularity, so
/// `PoolStats::steals` is always 0), and the pool's own worker count —
/// not the engine's — bounds parallelism.
///
/// Cloning shares the pool; the threads stop when the last clone drops.
#[derive(Clone)]
pub struct PersistentPool {
    inner: Arc<PoolInner>,
}

impl PersistentPool {
    /// Spawn a pool of `workers` long-lived threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            board: Mutex::new(Board {
                batch: None,
                epoch: 0,
                finished: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        PersistentPool {
            inner: Arc::new(PoolInner {
                workers,
                shared,
                handles: Mutex::new(handles),
                gate: Mutex::new(()),
            }),
        }
    }

    /// This pool's worker count.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Run `tasks` on the pool's threads; same semantics as [`run_tasks`]
    /// (results sorted by task index, `f(task_index, task)`).
    pub fn run<T, R, F>(&self, tasks: Vec<T>, f: F) -> (Vec<R>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let workers = self.inner.workers;
        let n = tasks.len();
        if n == 0 {
            return (
                Vec::new(),
                PoolStats {
                    busy_ns: vec![0; workers],
                    steals: 0,
                },
            );
        }
        let _serialize = self.inner.gate.lock().expect("gate poisoned");
        let shared = &self.inner.shared;

        // Each slot is taken exactly once: the cursor hands every index to
        // exactly one worker.
        let slots: Vec<Mutex<Option<T>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        let body = |w: usize, idx: usize| {
            let t = slots[idx]
                .lock()
                .expect("slot poisoned")
                .take()
                .expect("task index claimed twice");
            let t0 = thread_cpu_ns();
            let r = f(idx, t);
            shared.busy[w].fetch_add(thread_cpu_ns().saturating_sub(t0), Ordering::Relaxed);
            results.lock().expect("results poisoned").push((idx, r));
        };

        {
            let erased: &(dyn Fn(usize, usize) + Sync) = &body;
            // SAFETY: the pointer outlives its use — we block below until
            // every worker has finished the batch, and workers never touch
            // a batch pointer after bumping `finished` for its epoch.
            let ptr: BatchPtr = BatchPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize, usize) + Sync), *const BatchFn>(
                    erased as *const _,
                )
            });
            for b in shared.busy.iter() {
                b.store(0, Ordering::Relaxed);
            }
            shared.cursor.store(0, Ordering::Relaxed);
            let mut board = shared.board.lock().expect("board poisoned");
            board.batch = Some((ptr, n));
            board.epoch += 1;
            board.finished = 0;
            drop(board);
            shared.work_ready.notify_all();

            let mut board = shared.board.lock().expect("board poisoned");
            while board.finished < workers {
                board = shared.batch_done.wait(board).expect("board poisoned");
            }
            board.batch = None;
        }

        let mut indexed = results.into_inner().expect("pool worker panicked");
        debug_assert_eq!(indexed.len(), n, "every task must produce one result");
        indexed.sort_unstable_by_key(|(idx, _)| *idx);
        let busy_ns = shared
            .busy
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (
            indexed.into_iter().map(|(_, r)| r).collect(),
            PoolStats { busy_ns, steals: 0 },
        )
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (ptr, total) = {
            let mut board = shared.board.lock().expect("board poisoned");
            loop {
                if board.shutdown {
                    return;
                }
                if board.epoch != seen_epoch {
                    seen_epoch = board.epoch;
                    break board.batch.expect("epoch bumped without a batch");
                }
                board = shared.work_ready.wait(board).expect("board poisoned");
            }
        };
        // SAFETY: `run` keeps the batch body alive until this worker bumps
        // `finished` below; no dereference happens after that.
        let body = unsafe { &*ptr.0 };
        loop {
            let idx = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= total {
                break;
            }
            body(w, idx);
        }
        let mut board = shared.board.lock().expect("board poisoned");
        board.finished += 1;
        if board.finished == shared.busy.len() {
            shared.batch_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_at_any_worker_count() {
        let tasks: Vec<usize> = (0..103).collect();
        for workers in [1, 2, 3, 4, 8, 16] {
            let (got, stats) = run_tasks(workers, tasks.clone(), |idx, t| {
                assert_eq!(idx, t);
                t * 2
            });
            let want: Vec<usize> = (0..103).map(|t| t * 2).collect();
            assert_eq!(got, want, "workers={workers}");
            assert_eq!(stats.busy_ns.len(), workers);
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let (got, _) = run_tasks(4, (0..1000).collect::<Vec<usize>>(), |_, t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(got.len(), 1000);
    }

    #[test]
    fn unbalanced_tasks_get_stolen() {
        // One long chunk: worker 0 is seeded with everything heavy; with
        // enough tasks, other workers must steal to finish.
        let (got, stats) = run_tasks(4, (0..64).collect::<Vec<u64>>(), |_, t| {
            // A little real work so thieves have time to engage.
            let mut acc = t;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            t
        });
        assert_eq!(got, (0..64).collect::<Vec<u64>>());
        assert!(
            stats.steals > 0,
            "4 workers over 64 tasks should steal at least once"
        );
    }

    #[test]
    fn empty_task_list_is_fine() {
        let (got, stats) = run_tasks(4, Vec::<u32>::new(), |_, t| t);
        assert!(got.is_empty());
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn persistent_pool_matches_run_tasks() {
        let pool = PersistentPool::new(4);
        for round in 0..5 {
            let tasks: Vec<usize> = (0..97 + round).collect();
            let (got, stats) = pool.run(tasks.clone(), |idx, t| {
                assert_eq!(idx, t);
                t * 3
            });
            let want: Vec<usize> = tasks.iter().map(|t| t * 3).collect();
            assert_eq!(got, want, "round={round}");
            assert_eq!(stats.busy_ns.len(), 4);
        }
    }

    #[test]
    fn persistent_pool_runs_every_task_once() {
        let pool = PersistentPool::new(3);
        let counter = AtomicUsize::new(0);
        let (got, _) = pool.run((0..500).collect::<Vec<usize>>(), |_, t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(got, (0..500).collect::<Vec<usize>>());
    }

    #[test]
    fn persistent_pool_empty_batch_and_clone_share_threads() {
        let pool = PersistentPool::new(2);
        let alias = pool.clone();
        let (got, stats) = pool.run(Vec::<u32>::new(), |_, t| t);
        assert!(got.is_empty());
        assert_eq!(stats.busy_ns.len(), 2);
        let (got, _) = alias.run(vec![1u32, 2, 3], |_, t| t + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn busy_time_accumulates() {
        let (_, stats) = run_tasks(2, (0..8).collect::<Vec<u64>>(), |_, t| {
            let mut acc = t;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(2862933555777941757).wrapping_add(i);
            }
            std::hint::black_box(acc)
        });
        assert!(
            stats.total_busy_ns() > 0,
            "CPU-clock busy time must be observed"
        );
        assert!(stats.makespan_ns() <= stats.total_busy_ns());
    }
}
