//! Data-integrity primitives: in-tree FNV-1a checksums over DFS blocks and
//! shuffle spill runs, plus the deterministic bit-flip corruption the fault
//! plan injects *on read* (storage itself is never mutated — the same block
//! read through a clean replica is always pristine).
//!
//! ## Why flips land inside record payloads
//!
//! Corruption helpers walk the varint record framing and flip a bit inside
//! one record's *payload*, never a length prefix. A real bit flip could of
//! course hit framing too, but the checksum layer detects either case
//! identically (any flipped bit changes the FNV-1a sum), while the
//! payload-only discipline keeps the *checksums-disabled* counterfactual
//! well-defined: downstream operators see records that frame correctly but
//! decode to different (or undecodable) values, so the divergence test can
//! demonstrate silent wrong answers rather than tripping over torn framing.
//!
//! All corruption is a pure function of a caller-provided hash — no RNG, no
//! global state — so every chaos run replays bit-for-bit at any worker
//! count.

use crate::bytes::Bytes;
use crate::codec::{read_varint, KvBuffer};

/// FNV-1a over a byte string — the same construction as the shuffle
/// partitioner hash, reused here as the block/spill checksum. 64-bit FNV is
/// plenty for fault *detection* in a simulator: a single flipped bit always
/// changes the sum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Checksum of one DFS block (its full framed byte stream).
pub fn block_checksum(block: &[u8]) -> u64 {
    fnv1a(block)
}

/// Checksum of one shuffle spill run: the payload arena plus each pair's
/// key/value lengths, so both payload flips and (hypothetical) offset-table
/// tampering change the sum.
pub fn kv_checksum(kvs: &KvBuffer) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for i in 0..kvs.len() {
        for &b in (kvs.key(i).len() as u32).to_le_bytes().iter() {
            mix(b);
        }
        for &b in (kvs.value(i).len() as u32).to_le_bytes().iter() {
            mix(b);
        }
        for &b in kvs.key(i) {
            mix(b);
        }
        for &b in kvs.value(i) {
            mix(b);
        }
    }
    h
}

/// Byte spans `(offset, len)` of every non-empty record payload in a framed
/// block. Returns an empty vec when the block holds no flippable byte.
fn payload_spans(block: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut buf = block;
    while !buf.is_empty() {
        let Some(len) = read_varint(&mut buf) else {
            break;
        };
        let len = len as usize;
        if len > buf.len() {
            break;
        }
        let off = block.len() - buf.len();
        if len > 0 {
            spans.push((off, len));
        }
        buf = &buf[len..];
    }
    spans
}

/// Produce a corrupted copy of `block` with exactly one bit flipped inside a
/// record payload, both chosen by `h`. Returns `None` when the block has no
/// non-empty record (nothing to flip without touching framing) — callers
/// treat that as "the flip landed nowhere" and read the block clean.
pub fn corrupt_block(block: &[u8], h: u64) -> Option<Bytes> {
    let spans = payload_spans(block);
    if spans.is_empty() {
        return None;
    }
    let (off, len) = spans[(h % spans.len() as u64) as usize];
    let bit = ((h >> 17) % (len as u64 * 8)) as usize;
    let mut v = block.to_vec();
    v[off + bit / 8] ^= 1 << (bit % 8);
    Some(Bytes::from(v))
}

/// Flip one payload bit of one pair in a spill run, both chosen by `h`. The
/// flip prefers the pair's *value* bytes (keys order the merge; a value flip
/// reaches the reducer as silently wrong data, the failure mode checksums
/// exist to catch). Returns `false` when every pair is zero-length.
pub fn corrupt_kv(kvs: &mut KvBuffer, h: u64) -> bool {
    if kvs.is_empty() {
        return false;
    }
    let n = kvs.len();
    let start = (h % n as u64) as usize;
    for probe in 0..n {
        let i = (start + probe) % n;
        let (klen, vlen) = (kvs.key(i).len(), kvs.value(i).len());
        if klen + vlen == 0 {
            continue;
        }
        // Flip inside the value when it has bytes, else inside the key.
        let (in_value, span) = if vlen > 0 { (true, vlen) } else { (false, klen) };
        let bit = ((h >> 17) % (span as u64 * 8)) as usize;
        kvs.flip_pair_bit(i, in_value, bit);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(records: &[&[u8]]) -> Vec<u8> {
        let mut bb = crate::codec::BlockBuilder::new();
        for r in records {
            bb.push(r);
        }
        bb.finish()
    }

    #[test]
    fn checksum_detects_any_payload_flip() {
        let block = framed(&[b"hello", b"world", b""]);
        let clean = block_checksum(&block);
        for h in [0u64, 1, 99, u64::MAX, 0xdead_beef] {
            let bad = corrupt_block(&block, h).expect("non-empty records exist");
            assert_ne!(bad.as_ref(), &block[..], "flip must change bytes");
            assert_ne!(block_checksum(&bad), clean, "flip must change the sum");
        }
    }

    #[test]
    fn corruption_preserves_framing() {
        let block = framed(&[b"alpha", b"beta", b"gamma"]);
        for h in [3u64, 7, 1 << 40] {
            let bad = corrupt_block(&block, h).unwrap();
            let recs: Vec<&[u8]> = crate::codec::RecordIter::new(&bad).collect();
            assert_eq!(recs.len(), 3, "record framing must survive the flip");
        }
    }

    #[test]
    fn empty_or_zero_length_blocks_are_unflippable() {
        assert!(corrupt_block(&[], 5).is_none());
        let block = framed(&[b"", b""]);
        assert!(corrupt_block(&block, 5).is_none());
    }

    #[test]
    fn corruption_is_deterministic() {
        let block = framed(&[b"abc", b"defg"]);
        assert_eq!(
            corrupt_block(&block, 42).unwrap().as_ref(),
            corrupt_block(&block, 42).unwrap().as_ref()
        );
    }

    #[test]
    fn kv_checksum_detects_value_flip() {
        let mut kvs = KvBuffer::new();
        kvs.push(b"key1", b"value1");
        kvs.push(b"key2", b"value2");
        let clean = kv_checksum(&kvs);
        assert!(corrupt_kv(&mut kvs, 9));
        assert_ne!(kv_checksum(&kvs), clean);
        // Keys untouched (the flip prefers values), so sort order held.
        assert_eq!(kvs.key(0), b"key1");
        assert_eq!(kvs.key(1), b"key2");
    }

    #[test]
    fn kv_with_no_payload_is_unflippable() {
        let mut empty = KvBuffer::new();
        assert!(!corrupt_kv(&mut empty, 1));
        let mut zero = KvBuffer::new();
        zero.push(b"", b"");
        assert!(!corrupt_kv(&mut zero, 1));
    }
}
