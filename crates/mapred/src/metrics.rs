//! Per-job and per-workflow execution metrics.
//!
//! These are *measured* quantities — bytes genuinely serialized, records
//! genuinely processed — and the inputs to the cluster cost model.

use std::fmt;
use std::time::Duration;

/// Metrics for one executed MapReduce job.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Job name.
    pub name: String,
    /// Whether the job was map-only.
    pub map_only: bool,
    /// Number of map tasks (input splits).
    pub map_tasks: usize,
    /// Number of reduce tasks that received data.
    pub reduce_tasks: usize,
    /// Bytes read from the DFS by map tasks.
    pub input_bytes: u64,
    /// Records read by map tasks.
    pub input_records: u64,
    /// Input segments skipped whole via zone-map pruning by committed map
    /// attempts (subset of the splits counted in `input_bytes` — pruning
    /// saves scan work, not scheduled input).
    pub segments_skipped: u64,
    /// Input bytes of those skipped segments.
    pub input_bytes_pruned: u64,
    /// Map output records before the combiner.
    pub map_output_records: u64,
    /// Map output bytes before the combiner.
    pub map_output_bytes: u64,
    /// Records actually shuffled (post-combiner).
    pub shuffle_records: u64,
    /// Bytes actually shuffled (post-combiner).
    pub shuffle_bytes: u64,
    /// Output records written to the DFS.
    pub output_records: u64,
    /// Output bytes written to the DFS.
    pub output_bytes: u64,
    /// Total map task attempts, including retries and speculative
    /// duplicates (equals `map_tasks` on a fault-free run).
    pub map_attempts: u64,
    /// Total reduce task attempts, including retries and speculative
    /// duplicates (equals `reduce_tasks` on a fault-free run).
    pub reduce_attempts: u64,
    /// Attempts killed by injected failures (each one forced a retry).
    pub failed_attempts: u64,
    /// Speculative duplicate attempts launched for stragglers.
    pub speculative_attempts: u64,
    /// Tasks whose attempt straggled (slow attempt observed, whether or
    /// not speculation replaced it).
    pub straggler_tasks: u64,
    /// Failed attempts attributed to a simulated whole-node loss.
    pub lost_node_tasks: u64,
    /// Input records processed by attempts whose work was discarded.
    pub wasted_input_records: u64,
    /// Output bytes produced by attempts whose work was discarded.
    pub wasted_output_bytes: u64,
    /// DFS block reads whose checksum failed — the copy was quarantined and
    /// the block re-read from the next replica.
    pub corrupt_blocks_detected: u64,
    /// Shuffle spill runs whose checksum failed at the verify-on-commit
    /// gate — quarantined and re-fetched from the map output before any
    /// reducer saw a byte of them.
    pub corrupt_spills_detected: u64,
    /// Extra bytes read re-fetching quarantined blocks and spill runs.
    pub integrity_reread_bytes: u64,
    /// Corrupted copies that flowed through *undetected* because checksum
    /// verification was disabled. Always zero when checksums are on — the
    /// assertion the integrity suite pins.
    pub silent_corruptions: u64,
    /// Records committed task attempts skipped because they failed to
    /// decode (record-level quarantine — a layer below block checksums,
    /// which only vouch for the bytes, not the framing producers wrote).
    pub corrupt_records_skipped: u64,
    /// Simulated retry backoff accumulated by this job, seconds.
    pub backoff_s: f64,
    /// In-process wall time of this job.
    pub wall: Duration,
    /// Busiest map worker's CPU time in task bodies, nanoseconds — the map
    /// phase's busy-time makespan. Measured, machine-dependent; excluded
    /// from the cost model and from determinism signatures.
    pub map_busy_max_ns: u64,
    /// Total map-phase CPU time across all workers, nanoseconds.
    pub map_busy_total_ns: u64,
    /// Busiest reduce worker's CPU time in task bodies, nanoseconds.
    pub reduce_busy_max_ns: u64,
    /// Total reduce-phase CPU time across all workers, nanoseconds.
    pub reduce_busy_total_ns: u64,
    /// Tasks migrated between worker deques by work stealing (both phases).
    pub steals: u64,
    /// Committed reduce merge shards executed (`>= reduce_tasks` whenever
    /// a key-local reducer's partitions were cut into parallel ranges).
    pub merge_shards: usize,
    /// Cross-query scan-cache hits: the job's output was served from the
    /// cache and the job body never ran (all other counters stay zero).
    pub scan_cache_hits: u64,
    /// Scan-cache lookups that missed; the job ran and its output was
    /// offered to the cache.
    pub scan_cache_misses: u64,
    /// Cache entries evicted to admit this job's output.
    pub scan_cache_evictions: u64,
}

impl JobMetrics {
    /// Combiner effectiveness: shuffled records / pre-combine records.
    pub fn combine_ratio(&self) -> f64 {
        if self.map_output_records == 0 {
            1.0
        } else {
            self.shuffle_records as f64 / self.map_output_records as f64
        }
    }

    /// Total task attempts across both phases.
    pub fn task_attempts(&self) -> u64 {
        self.map_attempts + self.reduce_attempts
    }

    /// Attempts beyond the one-per-task minimum: retries after failures
    /// plus speculative duplicates. Zero on a fault-free run.
    pub fn extra_attempts(&self) -> u64 {
        self.task_attempts()
            .saturating_sub((self.map_tasks + self.reduce_tasks) as u64)
    }

    /// Busy-time makespan of the whole job: the critical path through both
    /// phase pools, assuming the phases run back to back.
    pub fn busy_makespan_ns(&self) -> u64 {
        self.map_busy_max_ns + self.reduce_busy_max_ns
    }

    /// Total CPU time in task bodies across both phases — the serial-run
    /// equivalent of [`Self::busy_makespan_ns`].
    pub fn busy_total_ns(&self) -> u64 {
        self.map_busy_total_ns + self.reduce_busy_total_ns
    }
}

impl fmt::Display for JobMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] in={}r/{}B shuffle={}r/{}B out={}r/{}B maps={} reduces={} wall={:?}",
            self.name,
            if self.map_only { "map-only" } else { "map-reduce" },
            self.input_records,
            self.input_bytes,
            self.shuffle_records,
            self.shuffle_bytes,
            self.output_records,
            self.output_bytes,
            self.map_tasks,
            self.reduce_tasks,
            self.wall,
        )?;
        if self.extra_attempts() > 0 || self.straggler_tasks > 0 {
            write!(
                f,
                " attempts={} (failed={} speculative={} stragglers={}) backoff={:.1}s",
                self.task_attempts(),
                self.failed_attempts,
                self.speculative_attempts,
                self.straggler_tasks,
                self.backoff_s,
            )?;
        }
        Ok(())
    }
}

/// Deterministic ledger of workflow-level recovery work: what checkpoint
/// resume saved and what aborts, timeout-kills, and replays cost. All
/// counters are driven by the serial workflow driver, so the ledger is
/// identical at any worker count.
///
/// Only *committed* job runs appear in [`WorkflowMetrics::jobs`]; the work
/// lost to aborted or killed attempts lives here, keeping the committed
/// per-job signatures byte-identical to a fault-free run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryLedger {
    /// Recovery passes the driver started (each after an abort or kill).
    pub workflow_restarts: u64,
    /// Whole-job attempts lost at commit time (simulated driver/node loss).
    pub aborted_job_attempts: u64,
    /// Job attempts killed for exceeding their simulated deadline.
    pub timeout_kills: u64,
    /// Deadline escalations applied after timeout-kills.
    pub deadline_escalations: u64,
    /// Executions of jobs that had already run before (the recompute cost
    /// of recovery — checkpoint resume exists to shrink this).
    pub jobs_replayed: u64,
    /// Jobs a recovery pass did *not* re-run thanks to a verified
    /// checkpoint.
    pub checkpoint_jobs_skipped: u64,
    /// Bytes read validating checkpoints on recovery passes.
    pub checkpoint_bytes_read: u64,
    /// Input + output bytes of replayed executions (recomputed work).
    pub recomputed_bytes: u64,
    /// Input + output bytes of aborted/killed attempts (work thrown away).
    pub wasted_bytes: u64,
    /// Task attempts inside aborted/killed job runs.
    pub wasted_task_attempts: u64,
    /// Simulated backoff between workflow-level recovery attempts, seconds.
    pub recovery_backoff_s: f64,
}

impl RecoveryLedger {
    /// True when no workflow-level recovery happened at all.
    pub fn is_clean(&self) -> bool {
        self.workflow_restarts == 0
            && self.aborted_job_attempts == 0
            && self.timeout_kills == 0
            && self.jobs_replayed == 0
    }

    /// Fold another ledger into this one (chained workflow segments).
    pub fn absorb(&mut self, o: &RecoveryLedger) {
        self.workflow_restarts += o.workflow_restarts;
        self.aborted_job_attempts += o.aborted_job_attempts;
        self.timeout_kills += o.timeout_kills;
        self.deadline_escalations += o.deadline_escalations;
        self.jobs_replayed += o.jobs_replayed;
        self.checkpoint_jobs_skipped += o.checkpoint_jobs_skipped;
        self.checkpoint_bytes_read += o.checkpoint_bytes_read;
        self.recomputed_bytes += o.recomputed_bytes;
        self.wasted_bytes += o.wasted_bytes;
        self.wasted_task_attempts += o.wasted_task_attempts;
        self.recovery_backoff_s += o.recovery_backoff_s;
    }
}

impl fmt::Display for RecoveryLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery: {} restarts ({} aborts, {} timeouts), {} jobs replayed, \
             {} skipped via checkpoints, recomputed={}B wasted={}B ckpt-read={}B backoff={:.1}s",
            self.workflow_restarts,
            self.aborted_job_attempts,
            self.timeout_kills,
            self.jobs_replayed,
            self.checkpoint_jobs_skipped,
            self.recomputed_bytes,
            self.wasted_bytes,
            self.checkpoint_bytes_read,
            self.recovery_backoff_s,
        )
    }
}

/// Aggregate metrics for an executed workflow (sequence of jobs).
#[derive(Debug, Clone, Default)]
pub struct WorkflowMetrics {
    /// Per-job metrics for *committed* runs, in workflow order.
    pub jobs: Vec<JobMetrics>,
    /// Workflow-level recovery ledger (zeroed on clean runs).
    pub recovery: RecoveryLedger,
}

impl WorkflowMetrics {
    /// Total number of MR cycles (the paper's headline plan-quality metric).
    pub fn cycles(&self) -> usize {
        self.jobs.len()
    }

    /// Number of full map-reduce cycles (with a shuffle).
    pub fn full_cycles(&self) -> usize {
        self.jobs.iter().filter(|j| !j.map_only).count()
    }

    /// Number of map-only cycles.
    pub fn map_only_cycles(&self) -> usize {
        self.jobs.iter().filter(|j| j.map_only).count()
    }

    /// Total bytes shuffled across all jobs.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.shuffle_bytes).sum()
    }

    /// Total bytes materialized to the DFS across all jobs.
    pub fn total_output_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.output_bytes).sum()
    }

    /// Total bytes read from the DFS across all jobs.
    pub fn total_input_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.input_bytes).sum()
    }

    /// Total input segments skipped via zone-map pruning across all jobs.
    pub fn total_segments_skipped(&self) -> u64 {
        self.jobs.iter().map(|j| j.segments_skipped).sum()
    }

    /// Total input bytes pruned by zone-map skipping across all jobs.
    pub fn total_input_bytes_pruned(&self) -> u64 {
        self.jobs.iter().map(|j| j.input_bytes_pruned).sum()
    }

    /// Total in-process wall time.
    pub fn total_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// Total task attempts across all jobs (map + reduce, incl. retries
    /// and speculation).
    pub fn total_task_attempts(&self) -> u64 {
        self.jobs.iter().map(|j| j.task_attempts()).sum()
    }

    /// Total attempts killed by injected failures across all jobs.
    pub fn total_retried_attempts(&self) -> u64 {
        self.jobs.iter().map(|j| j.failed_attempts).sum()
    }

    /// Total speculative duplicate attempts across all jobs.
    pub fn total_speculative_attempts(&self) -> u64 {
        self.jobs.iter().map(|j| j.speculative_attempts).sum()
    }

    /// Total straggling tasks observed across all jobs.
    pub fn total_straggler_tasks(&self) -> u64 {
        self.jobs.iter().map(|j| j.straggler_tasks).sum()
    }

    /// Total input records whose processing was discarded (failed or
    /// superseded attempts) across all jobs.
    pub fn total_wasted_input_records(&self) -> u64 {
        self.jobs.iter().map(|j| j.wasted_input_records).sum()
    }

    /// Total output bytes produced then discarded across all jobs.
    pub fn total_wasted_output_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.wasted_output_bytes).sum()
    }

    /// Total simulated retry backoff across all jobs, seconds.
    pub fn total_backoff_s(&self) -> f64 {
        self.jobs.iter().map(|j| j.backoff_s).sum()
    }

    /// Total corrupt DFS block reads detected and quarantined.
    pub fn total_corrupt_blocks_detected(&self) -> u64 {
        self.jobs.iter().map(|j| j.corrupt_blocks_detected).sum()
    }

    /// Total corrupt spill runs detected at the verify-on-commit gate.
    pub fn total_corrupt_spills_detected(&self) -> u64 {
        self.jobs.iter().map(|j| j.corrupt_spills_detected).sum()
    }

    /// Total bytes re-read recovering from quarantined blocks and spills.
    pub fn total_integrity_reread_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.integrity_reread_bytes).sum()
    }

    /// Total corruptions that flowed through undetected (checksums off).
    pub fn total_silent_corruptions(&self) -> u64 {
        self.jobs.iter().map(|j| j.silent_corruptions).sum()
    }

    /// Total undecodable records skipped by committed task attempts.
    pub fn total_corrupt_records_skipped(&self) -> u64 {
        self.jobs.iter().map(|j| j.corrupt_records_skipped).sum()
    }

    /// Total busy-time makespan across all jobs (jobs run back to back).
    pub fn total_busy_makespan_ns(&self) -> u64 {
        self.jobs.iter().map(|j| j.busy_makespan_ns()).sum()
    }

    /// Total CPU time in task bodies across all jobs.
    pub fn total_busy_ns(&self) -> u64 {
        self.jobs.iter().map(|j| j.busy_total_ns()).sum()
    }

    /// Total scan-cache hits (jobs short-circuited by the cache).
    pub fn total_scan_cache_hits(&self) -> u64 {
        self.jobs.iter().map(|j| j.scan_cache_hits).sum()
    }

    /// Total scan-cache misses (keyed jobs that had to run).
    pub fn total_scan_cache_misses(&self) -> u64 {
        self.jobs.iter().map(|j| j.scan_cache_misses).sum()
    }

    /// Total scan-cache evictions charged to this workflow's insertions.
    pub fn total_scan_cache_evictions(&self) -> u64 {
        self.jobs.iter().map(|j| j.scan_cache_evictions).sum()
    }
}

impl fmt::Display for WorkflowMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workflow: {} cycles ({} full, {} map-only), shuffle={}B, materialized={}B",
            self.cycles(),
            self.full_cycles(),
            self.map_only_cycles(),
            self.total_shuffle_bytes(),
            self.total_output_bytes(),
        )?;
        for j in &self.jobs {
            writeln!(f, "  {j}")?;
        }
        if !self.recovery.is_clean() {
            writeln!(f, "  {}", self.recovery)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_counts_cycles() {
        let mut wf = WorkflowMetrics::default();
        wf.jobs.push(JobMetrics {
            name: "a".into(),
            map_only: false,
            shuffle_bytes: 100,
            ..Default::default()
        });
        wf.jobs.push(JobMetrics {
            name: "b".into(),
            map_only: true,
            output_bytes: 50,
            ..Default::default()
        });
        assert_eq!(wf.cycles(), 2);
        assert_eq!(wf.full_cycles(), 1);
        assert_eq!(wf.map_only_cycles(), 1);
        assert_eq!(wf.total_shuffle_bytes(), 100);
        assert_eq!(wf.total_output_bytes(), 50);
    }

    #[test]
    fn combine_ratio_defaults_to_one() {
        let m = JobMetrics::default();
        assert_eq!(m.combine_ratio(), 1.0);
        let m2 = JobMetrics {
            map_output_records: 100,
            shuffle_records: 25,
            ..Default::default()
        };
        assert_eq!(m2.combine_ratio(), 0.25);
    }
}
