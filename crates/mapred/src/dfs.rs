//! A simulated distributed file system: named datasets of record blocks.
//!
//! Each block doubles as an input split for map tasks, mirroring HDFS's
//! block-per-split default. Read/write byte counters feed the cluster cost
//! model.

use crate::bytes::Bytes;
use crate::codec::{BlockBuilder, RecordIter};
use std::collections::HashMap;
use std::sync::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named dataset: an immutable sequence of record blocks.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// The blocks; each block is a sequence of length-prefixed records.
    pub blocks: Vec<Bytes>,
    /// Total record count.
    pub records: usize,
    /// Per-block record counts, parallel to [`Self::blocks`]. May be empty
    /// on hand-assembled datasets (counts unknown); engine-written and
    /// [`DatasetWriter`]-written datasets always fill it, which lets the
    /// fault-injection kill point know a split's record count without a
    /// decode pass.
    pub block_records: Vec<usize>,
}

impl Dataset {
    /// Total size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Iterate all records across all blocks.
    pub fn iter_records(&self) -> impl Iterator<Item = &[u8]> {
        self.blocks.iter().flat_map(|b| RecordIter::new(b))
    }

    /// Record count of block `i`, if tracked.
    pub fn block_record_count(&self, i: usize) -> Option<usize> {
        self.block_records.get(i).copied()
    }
}

/// Builder that packs records into blocks of roughly `split_bytes`.
pub struct DatasetWriter {
    split_bytes: usize,
    current: BlockBuilder,
    blocks: Vec<Bytes>,
    block_records: Vec<usize>,
    records: usize,
}

impl DatasetWriter {
    /// Create a writer with the given target split size.
    pub fn new(split_bytes: usize) -> Self {
        DatasetWriter {
            split_bytes: split_bytes.max(1),
            current: BlockBuilder::new(),
            blocks: Vec::new(),
            block_records: Vec::new(),
            records: 0,
        }
    }

    /// Append a record, rolling over to a new block at the split boundary.
    pub fn push(&mut self, record: &[u8]) {
        self.current.push(record);
        self.records += 1;
        if self.current.len() >= self.split_bytes {
            let b = std::mem::take(&mut self.current);
            self.block_records.push(b.records());
            self.blocks.push(Bytes::from(b.finish()));
        }
    }

    /// Finish, producing the dataset.
    pub fn finish(mut self) -> Dataset {
        if !self.current.is_empty() {
            self.block_records.push(self.current.records());
            self.blocks.push(Bytes::from(self.current.finish()));
        }
        Dataset {
            blocks: self.blocks,
            records: self.records,
            block_records: self.block_records,
        }
    }
}

/// The simulated DFS, shared between jobs of a workflow.
#[derive(Clone, Default)]
pub struct SimDfs {
    inner: Arc<RwLock<HashMap<String, Dataset>>>,
    bytes_written: Arc<AtomicU64>,
    bytes_read: Arc<AtomicU64>,
}

impl SimDfs {
    /// Create an empty DFS.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a dataset under `name`, replacing any existing one.
    pub fn put(&self, name: &str, ds: Dataset) {
        self.bytes_written
            .fetch_add(ds.total_bytes() as u64, Ordering::Relaxed);
        self.inner.write().unwrap().insert(name.to_string(), ds);
    }

    /// Fetch a dataset (cheap: blocks are refcounted).
    pub fn get(&self, name: &str) -> Option<Dataset> {
        let ds = self.inner.read().unwrap().get(name).cloned();
        if let Some(d) = &ds {
            self.bytes_read
                .fetch_add(d.total_bytes() as u64, Ordering::Relaxed);
        }
        ds
    }

    /// Peek at a dataset without counting a read.
    pub fn peek(&self, name: &str) -> Option<Dataset> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// Remove a dataset.
    pub fn remove(&self, name: &str) -> Option<Dataset> {
        self.inner.write().unwrap().remove(name)
    }

    /// Does the dataset exist?
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().unwrap().contains_key(name)
    }

    /// Names of all stored datasets, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total bytes ever written through `put`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes ever read through `get`.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Current total stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .read()
            .unwrap()
            .values()
            .map(|d| d.total_bytes() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_splits_blocks() {
        let mut w = DatasetWriter::new(64);
        for i in 0..100u32 {
            w.push(format!("record-{i:04}").as_bytes());
        }
        let ds = w.finish();
        assert!(ds.blocks.len() > 1, "expected multiple splits");
        assert_eq!(ds.records, 100);
        assert_eq!(ds.iter_records().count(), 100);
        // Per-block counts are tracked and consistent with the blocks.
        assert_eq!(ds.block_records.len(), ds.blocks.len());
        assert_eq!(ds.block_records.iter().sum::<usize>(), 100);
        for (i, b) in ds.blocks.iter().enumerate() {
            assert_eq!(ds.block_record_count(i), Some(RecordIter::new(b).count()));
        }
    }

    #[test]
    fn dfs_put_get_counts_bytes() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(1024);
        w.push(b"hello");
        let ds = w.finish();
        let size = ds.total_bytes() as u64;
        dfs.put("a", ds);
        assert_eq!(dfs.bytes_written(), size);
        assert!(dfs.contains("a"));
        let got = dfs.get("a").unwrap();
        assert_eq!(dfs.bytes_read(), size);
        assert_eq!(got.records, 1);
        assert_eq!(dfs.names(), vec!["a".to_string()]);
    }

    #[test]
    fn peek_does_not_count_read() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(1024);
        w.push(b"x");
        dfs.put("a", w.finish());
        let _ = dfs.peek("a");
        assert_eq!(dfs.bytes_read(), 0);
    }

    #[test]
    fn remove_frees_dataset() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(1024);
        w.push(b"x");
        dfs.put("a", w.finish());
        assert!(dfs.remove("a").is_some());
        assert!(!dfs.contains("a"));
        assert_eq!(dfs.stored_bytes(), 0);
    }

    #[test]
    fn empty_dataset_is_valid() {
        let ds = DatasetWriter::new(128).finish();
        assert_eq!(ds.blocks.len(), 0);
        assert_eq!(ds.total_bytes(), 0);
    }
}
