//! A simulated distributed file system: named datasets of record blocks.
//!
//! Each block doubles as an input split for map tasks, mirroring HDFS's
//! block-per-split default. Read/write byte counters feed the cluster cost
//! model.

use crate::bytes::Bytes;
use crate::codec::{BlockBuilder, RecordIter};
use crate::fault::FaultPlan;
use crate::integrity;
use std::collections::HashMap;
use std::sync::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A named dataset: an immutable sequence of record blocks.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// The blocks; each block is a sequence of length-prefixed records.
    pub blocks: Vec<Bytes>,
    /// Total record count.
    pub records: usize,
    /// Per-block record counts, parallel to [`Self::blocks`]. May be empty
    /// on hand-assembled datasets (counts unknown); engine-written and
    /// [`DatasetWriter`]-written datasets always fill it, which lets the
    /// fault-injection kill point know a split's record count without a
    /// decode pass.
    pub block_records: Vec<usize>,
}

impl Dataset {
    /// Total size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Iterate all records across all blocks.
    pub fn iter_records(&self) -> impl Iterator<Item = &[u8]> {
        self.blocks.iter().flat_map(|b| RecordIter::new(b))
    }

    /// Record count of block `i`, if tracked.
    pub fn block_record_count(&self, i: usize) -> Option<usize> {
        self.block_records.get(i).copied()
    }
}

/// Builder that packs records into blocks of roughly `split_bytes`.
pub struct DatasetWriter {
    split_bytes: usize,
    current: BlockBuilder,
    blocks: Vec<Bytes>,
    block_records: Vec<usize>,
    records: usize,
}

impl DatasetWriter {
    /// Create a writer with the given target split size.
    pub fn new(split_bytes: usize) -> Self {
        DatasetWriter {
            split_bytes: split_bytes.max(1),
            current: BlockBuilder::new(),
            blocks: Vec::new(),
            block_records: Vec::new(),
            records: 0,
        }
    }

    /// Append a record, rolling over to a new block at the split boundary.
    pub fn push(&mut self, record: &[u8]) {
        self.current.push(record);
        self.records += 1;
        if self.current.len() >= self.split_bytes {
            let b = std::mem::take(&mut self.current);
            self.block_records.push(b.records());
            self.blocks.push(Bytes::from(b.finish()));
        }
    }

    /// Finish, producing the dataset.
    pub fn finish(mut self) -> Dataset {
        if !self.current.is_empty() {
            self.block_records.push(self.current.records());
            self.blocks.push(Bytes::from(self.current.finish()));
        }
        Dataset {
            blocks: self.blocks,
            records: self.records,
            block_records: self.block_records,
        }
    }
}

/// A stored dataset plus the per-block FNV-1a checksums computed at `put`
/// time — the DFS-side half of the integrity contract. Sums are behind an
/// `Arc` so `get` clones stay cheap.
#[derive(Clone)]
struct Stored {
    ds: Dataset,
    block_sums: Arc<Vec<u64>>,
}

/// What an integrity-checked read observed (see [`SimDfs::fetch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Block reads whose checksum mismatched; each was quarantined and the
    /// block re-read from the next replica.
    pub corrupt_blocks: u64,
    /// Extra bytes read by those replica re-reads.
    pub reread_bytes: u64,
    /// Corrupted copies returned to the caller because verification was
    /// disabled. Always zero with checksums on.
    pub silent: u64,
}

/// The simulated DFS, shared between jobs of a workflow.
#[derive(Clone, Default)]
pub struct SimDfs {
    inner: Arc<RwLock<HashMap<String, Stored>>>,
    bytes_written: Arc<AtomicU64>,
    bytes_read: Arc<AtomicU64>,
}

impl SimDfs {
    /// Create an empty DFS.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a dataset under `name`, replacing any existing one. Every
    /// block's checksum is computed here, from the bytes being stored —
    /// the ground truth integrity reads verify against.
    pub fn put(&self, name: &str, ds: Dataset) {
        self.bytes_written
            .fetch_add(ds.total_bytes() as u64, Ordering::Relaxed);
        let block_sums = Arc::new(
            ds.blocks
                .iter()
                .map(|b| integrity::block_checksum(b))
                .collect::<Vec<u64>>(),
        );
        self.inner
            .write()
            .unwrap()
            .insert(name.to_string(), Stored { ds, block_sums });
    }

    /// Fetch a dataset (cheap: blocks are refcounted).
    pub fn get(&self, name: &str) -> Option<Dataset> {
        let ds = self.inner.read().unwrap().get(name).map(|s| s.ds.clone());
        if let Some(d) = &ds {
            self.bytes_read
                .fetch_add(d.total_bytes() as u64, Ordering::Relaxed);
        }
        ds
    }

    /// Fetch a dataset through the integrity read path: every block read
    /// walks the replica chain under the fault plan's corruption decisions.
    /// With `verify` on, a corrupted copy is *detected* by recomputing its
    /// checksum against the sum stored at `put` time, quarantined, and the
    /// block re-read from the next replica (the last replica is never
    /// corrupted, so the walk terminates on clean bytes — see
    /// [`FaultPlan::replicas`]). With `verify` off, the first replica's
    /// possibly-flipped copy is returned as-is and counted as silent.
    ///
    /// Without a fault plan this is exactly [`SimDfs::get`].
    pub fn fetch(
        &self,
        name: &str,
        faults: Option<&FaultPlan>,
        verify: bool,
    ) -> Option<(Dataset, IntegrityReport)> {
        let mut ds = self.get(name)?;
        let mut report = IntegrityReport::default();
        let Some(plan) = faults.filter(|p| p.block_corrupt_p > 0.0) else {
            return Some((ds, report));
        };
        let sums = self
            .inner
            .read()
            .unwrap()
            .get(name)
            .map(|s| Arc::clone(&s.block_sums))?;
        for (bi, block) in ds.blocks.iter_mut().enumerate() {
            let replicas = plan.replicas.max(1);
            for replica in 0..replicas {
                let copy = plan
                    .corrupt_block(name, bi, replica)
                    .and_then(|h| integrity::corrupt_block(block, h));
                let Some(bad) = copy else {
                    break; // this replica reads clean
                };
                if !verify {
                    report.silent += 1;
                    *block = bad;
                    break;
                }
                // Honest detection: recompute the checksum of the bytes we
                // actually got and compare to the stored sum.
                if integrity::block_checksum(&bad) == sums[bi] {
                    *block = bad; // unreachable: a flip always changes FNV
                    break;
                }
                report.corrupt_blocks += 1;
                report.reread_bytes += block.len() as u64;
                self.bytes_read
                    .fetch_add(block.len() as u64, Ordering::Relaxed);
            }
        }
        Some((ds, report))
    }

    /// Recompute and verify every block checksum of `name` against the sums
    /// stored at `put` time. Returns the dataset's byte size on success,
    /// `None` when the dataset is missing or any block mismatches — the
    /// checkpoint-validation primitive of workflow recovery.
    pub fn verify(&self, name: &str) -> Option<u64> {
        let stored = self.inner.read().unwrap().get(name).cloned()?;
        if stored.ds.blocks.len() != stored.block_sums.len() {
            return None;
        }
        for (b, &sum) in stored.ds.blocks.iter().zip(stored.block_sums.iter()) {
            if integrity::block_checksum(b) != sum {
                return None;
            }
        }
        Some(stored.ds.total_bytes() as u64)
    }

    /// The stored per-block checksums of `name`, if present.
    pub fn block_sums(&self, name: &str) -> Option<Vec<u64>> {
        self.inner
            .read()
            .unwrap()
            .get(name)
            .map(|s| s.block_sums.as_ref().clone())
    }

    /// Peek at a dataset without counting a read.
    pub fn peek(&self, name: &str) -> Option<Dataset> {
        self.inner.read().unwrap().get(name).map(|s| s.ds.clone())
    }

    /// Remove a dataset.
    pub fn remove(&self, name: &str) -> Option<Dataset> {
        self.inner.write().unwrap().remove(name).map(|s| s.ds)
    }

    /// Does the dataset exist?
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().unwrap().contains_key(name)
    }

    /// Names of all stored datasets, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total bytes ever written through `put`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes ever read through `get`.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Current total stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .read()
            .unwrap()
            .values()
            .map(|s| s.ds.total_bytes() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_splits_blocks() {
        let mut w = DatasetWriter::new(64);
        for i in 0..100u32 {
            w.push(format!("record-{i:04}").as_bytes());
        }
        let ds = w.finish();
        assert!(ds.blocks.len() > 1, "expected multiple splits");
        assert_eq!(ds.records, 100);
        assert_eq!(ds.iter_records().count(), 100);
        // Per-block counts are tracked and consistent with the blocks.
        assert_eq!(ds.block_records.len(), ds.blocks.len());
        assert_eq!(ds.block_records.iter().sum::<usize>(), 100);
        for (i, b) in ds.blocks.iter().enumerate() {
            assert_eq!(ds.block_record_count(i), Some(RecordIter::new(b).count()));
        }
    }

    #[test]
    fn dfs_put_get_counts_bytes() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(1024);
        w.push(b"hello");
        let ds = w.finish();
        let size = ds.total_bytes() as u64;
        dfs.put("a", ds);
        assert_eq!(dfs.bytes_written(), size);
        assert!(dfs.contains("a"));
        let got = dfs.get("a").unwrap();
        assert_eq!(dfs.bytes_read(), size);
        assert_eq!(got.records, 1);
        assert_eq!(dfs.names(), vec!["a".to_string()]);
    }

    #[test]
    fn peek_does_not_count_read() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(1024);
        w.push(b"x");
        dfs.put("a", w.finish());
        let _ = dfs.peek("a");
        assert_eq!(dfs.bytes_read(), 0);
    }

    #[test]
    fn remove_frees_dataset() {
        let dfs = SimDfs::new();
        let mut w = DatasetWriter::new(1024);
        w.push(b"x");
        dfs.put("a", w.finish());
        assert!(dfs.remove("a").is_some());
        assert!(!dfs.contains("a"));
        assert_eq!(dfs.stored_bytes(), 0);
    }

    #[test]
    fn empty_dataset_is_valid() {
        let ds = DatasetWriter::new(128).finish();
        assert_eq!(ds.blocks.len(), 0);
        assert_eq!(ds.total_bytes(), 0);
    }

    fn small_ds(records: &[&[u8]]) -> Dataset {
        let mut w = DatasetWriter::new(1024);
        for r in records {
            w.push(r);
        }
        w.finish()
    }

    #[test]
    fn get_on_missing_name_is_none_and_counts_nothing() {
        let dfs = SimDfs::new();
        assert!(dfs.get("nope").is_none());
        assert!(dfs.fetch("nope", None, true).is_none());
        assert!(dfs.verify("nope").is_none());
        assert_eq!(dfs.bytes_read(), 0, "a miss reads no bytes");
    }

    #[test]
    fn put_overwrites_dataset_and_checksums_together() {
        let dfs = SimDfs::new();
        dfs.put("a", small_ds(&[b"old-contents"]));
        let old_sums = dfs.block_sums("a").unwrap();
        let old_size = dfs.peek("a").unwrap().total_bytes() as u64;
        dfs.put("a", small_ds(&[b"new"]));
        // The replacement is fully visible: data, sums, and verification
        // all reflect the new bytes; written-byte accounting covers both
        // puts (the DFS models total write traffic, not net storage).
        let got = dfs.peek("a").unwrap();
        assert_eq!(got.iter_records().next().unwrap(), b"new");
        assert_ne!(dfs.block_sums("a").unwrap(), old_sums);
        assert_eq!(dfs.verify("a"), Some(got.total_bytes() as u64));
        assert_eq!(dfs.bytes_written(), old_size + got.total_bytes() as u64);
        assert_eq!(dfs.names(), vec!["a".to_string()]);
    }

    #[test]
    fn remove_then_read_misses() {
        let dfs = SimDfs::new();
        dfs.put("a", small_ds(&[b"x"]));
        assert!(dfs.remove("a").is_some());
        assert!(dfs.get("a").is_none());
        assert!(dfs.peek("a").is_none());
        assert!(dfs.block_sums("a").is_none());
        assert!(dfs.remove("a").is_none(), "double remove is a miss");
        assert_eq!(dfs.bytes_read(), 0);
    }

    #[test]
    fn bytes_read_accumulates_under_rereads() {
        let dfs = SimDfs::new();
        let ds = small_ds(&[b"hello", b"world"]);
        let size = ds.total_bytes() as u64;
        dfs.put("a", ds);
        let _ = dfs.get("a");
        let _ = dfs.get("a");
        let _ = dfs.get("a");
        assert_eq!(dfs.bytes_read(), 3 * size, "every get pays a full read");
        assert_eq!(dfs.bytes_written(), size, "writes counted once");
        let _ = dfs.peek("a");
        assert_eq!(dfs.bytes_read(), 3 * size, "peek stays free");
    }

    #[test]
    fn fetch_detects_quarantines_and_rereads_from_replica() {
        use crate::fault::FaultPlan;
        let dfs = SimDfs::new();
        let ds = small_ds(&[b"payload-record-one", b"payload-record-two"]);
        let size = ds.total_bytes() as u64;
        dfs.put("a", ds.clone());
        // Corrupt every non-final replica read: the verified fetch must
        // still return the clean bytes, charging one re-read per hop.
        let plan = FaultPlan {
            block_corrupt_p: 1.0,
            ..FaultPlan::new(7)
        };
        let (got, report) = dfs.fetch("a", Some(&plan), true).unwrap();
        assert_eq!(
            got.blocks[0].as_ref(),
            ds.blocks[0].as_ref(),
            "verified read must return clean bytes"
        );
        assert_eq!(report.corrupt_blocks as usize, plan.replicas - 1);
        assert_eq!(report.reread_bytes, (plan.replicas as u64 - 1) * size);
        assert_eq!(report.silent, 0);
        // Base read + one re-read per quarantined replica.
        assert_eq!(dfs.bytes_read(), size + report.reread_bytes);
    }

    #[test]
    fn unverified_fetch_returns_silently_corrupt_bytes() {
        use crate::fault::FaultPlan;
        let dfs = SimDfs::new();
        let ds = small_ds(&[b"payload-record-one"]);
        dfs.put("a", ds.clone());
        let plan = FaultPlan {
            block_corrupt_p: 1.0,
            ..FaultPlan::new(7)
        };
        let (got, report) = dfs.fetch("a", Some(&plan), false).unwrap();
        assert_ne!(
            got.blocks[0].as_ref(),
            ds.blocks[0].as_ref(),
            "without verification the flipped copy flows through"
        );
        assert_eq!(report.silent, 1);
        assert_eq!(report.corrupt_blocks, 0);
        // Storage itself was never touched: a later verified read is clean.
        assert_eq!(dfs.verify("a"), Some(ds.total_bytes() as u64));
    }

    #[test]
    fn fetch_without_faults_is_plain_get() {
        let dfs = SimDfs::new();
        dfs.put("a", small_ds(&[b"x"]));
        let (got, report) = dfs.fetch("a", None, true).unwrap();
        assert_eq!(got.records, 1);
        assert_eq!(report, IntegrityReport::default());
    }
}
