//! K-way merge of pre-sorted shuffle runs.
//!
//! Each map task leaves one key-sorted run per reduce partition; the
//! reduce-side shuffle is a [`LoserTree`] merge of those runs that feeds the
//! reducer a *streaming* sequence of key groups ([`merge_key_groups`])
//! instead of a materialized, re-sorted `Vec` of pairs.
//!
//! ## Determinism
//!
//! The merge is a total order: pairs are compared by key bytes and ties are
//! broken by run index (runs are supplied in canonical map-task order).
//! Because every run is itself sorted by `(key, emit order)`
//! ([`KvBuffer::sort_unstable`]), the merged sequence is exactly what the
//! old engine's stable reduce-side sort over the task-ordered concatenation
//! produced — equal keys surface in (map task, emit) order, byte for byte.

use crate::codec::KvBuffer;

/// One pre-sorted run: a [`KvBuffer`] plus an optional selection of entry
/// indices (a map task's slice of one reduce partition). With no selection
/// the whole buffer is the run.
#[derive(Clone, Copy)]
pub struct Run<'a> {
    buf: &'a KvBuffer,
    sel: Option<&'a [u32]>,
}

impl<'a> Run<'a> {
    /// A run covering the whole (pre-sorted) buffer.
    pub fn sorted(buf: &'a KvBuffer) -> Self {
        Run { buf, sel: None }
    }

    /// A run over a selection of entry indices, in selection order (the
    /// indices must point at keys in non-decreasing order).
    pub fn select(buf: &'a KvBuffer, sel: &'a [u32]) -> Self {
        Run {
            buf,
            sel: Some(sel),
        }
    }

    /// Number of pairs in the run.
    pub fn len(&self) -> usize {
        self.sel.map_or(self.buf.len(), |s| s.len())
    }

    /// True if the run holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn entry(&self, i: usize) -> usize {
        match self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Key bytes of the run's `i`-th pair.
    #[inline]
    pub fn key(&self, i: usize) -> &'a [u8] {
        self.buf.key(self.entry(i))
    }

    /// Value bytes of the run's `i`-th pair.
    #[inline]
    pub fn value(&self, i: usize) -> &'a [u8] {
        self.buf.value(self.entry(i))
    }
}

/// A classic loser tree over `k` runs: `next()` yields `(run, index)` pairs
/// in `(key, run)` order with `O(log k)` comparisons per pair (one replay
/// path from the winning leaf to the root), versus `O(k)` for naive
/// selection and `O(log k)` with ~2× the comparisons for a binary heap.
pub struct LoserTree<'a, 'r> {
    runs: &'r [Run<'a>],
    /// Next unconsumed position in each run.
    pos: Vec<usize>,
    /// Each live run's current head key, resolved once per advance —
    /// replay comparisons touch only these cached slices instead of
    /// re-chasing selection → offset table → arena at every tree level.
    /// `None` marks an exhausted run.
    heads: Vec<Option<&'a [u8]>>,
    /// `tree[0]` is the overall winner; `tree[1..k]` hold the loser of the
    /// internal match at that node. Leaves are implicit at `k..2k`, padded
    /// to a power of two with exhausted virtual runs.
    tree: Vec<usize>,
    /// Padded leaf count (power of two, 0 when there are no runs).
    k: usize,
}

impl<'a, 'r> LoserTree<'a, 'r> {
    /// Build the tree over `runs` (each pre-sorted by key).
    pub fn new(runs: &'r [Run<'a>]) -> Self {
        let n = runs.len();
        if n == 0 {
            return LoserTree {
                runs,
                pos: Vec::new(),
                heads: Vec::new(),
                tree: Vec::new(),
                k: 0,
            };
        }
        let k = n.next_power_of_two();
        let pos = vec![0usize; n];
        let heads: Vec<Option<&'a [u8]>> = runs
            .iter()
            .map(|r| if r.is_empty() { None } else { Some(r.key(0)) })
            .collect();
        let mut lt = LoserTree {
            runs,
            pos,
            heads,
            tree: vec![usize::MAX; k],
            k,
        };
        // Initial matches, bottom-up: winners propagate, losers stay.
        let mut winners = vec![0usize; 2 * k];
        for leaf in 0..k {
            winners[k + leaf] = leaf; // leaf id == run id; >= n means virtual
        }
        for node in (1..k).rev() {
            let (a, b) = (winners[2 * node], winners[2 * node + 1]);
            if lt.beats(a, b) {
                winners[node] = a;
                lt.tree[node] = b;
            } else {
                winners[node] = b;
                lt.tree[node] = a;
            }
        }
        lt.tree[0] = winners[1];
        lt
    }

    /// Does run `a`'s head beat run `b`'s head? Exhausted (or virtual) runs
    /// lose to everything; ties break toward the lower run index.
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        let ha = if a < self.heads.len() { self.heads[a] } else { None };
        let hb = if b < self.heads.len() { self.heads[b] } else { None };
        match (ha, hb) {
            (Some(x), Some(y)) => x.cmp(y).then(a.cmp(&b)).is_lt(),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Pop the next pair in merge order: `(run index, index within run)`.
    pub fn next(&mut self) -> Option<(usize, usize)> {
        self.next_with_key().map(|(r, i, _)| (r, i))
    }

    /// Pop the next pair along with its key bytes — the key is the cached
    /// head slice, so callers on the hot path skip one arena resolution.
    pub fn next_with_key(&mut self) -> Option<(usize, usize, &'a [u8])> {
        if self.k == 0 {
            return None;
        }
        let w = self.tree[0];
        if w >= self.runs.len() {
            return None;
        }
        let key = self.heads[w]?; // None: overall winner exhausted, merge done
        let idx = self.pos[w];
        self.pos[w] += 1;
        self.heads[w] = if self.pos[w] < self.runs[w].len() {
            Some(self.runs[w].key(self.pos[w]))
        } else {
            None
        };
        // Replay the path from w's leaf to the root.
        let mut cur = w;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            let other = self.tree[node];
            if self.beats(other, cur) {
                self.tree[node] = cur;
                cur = other;
            }
            node /= 2;
        }
        self.tree[0] = cur;
        Some((w, idx, key))
    }
}

/// Merge `runs` and stream key groups to `f(key, values)` — the reduce-side
/// shuffle in one pass, never materializing the merged pair list. With
/// `limit = Some(n)` consumption stops after `n` pairs, emitting the final
/// (possibly cut) group — the fault-injection kill point, matching the old
/// engine's `kvs[..limit]` prefix semantics. Returns the pairs consumed.
pub fn merge_key_groups<F: FnMut(&[u8], &[&[u8]])>(
    runs: &[Run<'_>],
    limit: Option<usize>,
    mut f: F,
) -> usize {
    let cap = limit.unwrap_or(usize::MAX);
    if cap == 0 {
        return 0;
    }
    let mut lt = LoserTree::new(runs);
    let Some((r0, i0, k0)) = lt.next_with_key() else {
        return 0;
    };
    let mut cur_key = k0;
    let mut values: Vec<&[u8]> = vec![runs[r0].value(i0)];
    let mut consumed = 1usize;
    while consumed < cap {
        let Some((r, i, key)) = lt.next_with_key() else {
            break;
        };
        if key != cur_key {
            f(cur_key, &values);
            values.clear();
            cur_key = key;
        }
        values.push(runs[r].value(i));
        consumed += 1;
    }
    f(cur_key, &values);
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_buf(pairs: &[(&[u8], &[u8])]) -> KvBuffer {
        let mut b = KvBuffer::new();
        for (k, v) in pairs {
            b.push(k, v);
        }
        b.sort_unstable();
        b
    }

    fn merged(runs: &[Run<'_>]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut lt = LoserTree::new(runs);
        let mut out = Vec::new();
        while let Some((r, i)) = lt.next() {
            out.push((runs[r].key(i).to_vec(), runs[r].value(i).to_vec()));
        }
        out
    }

    #[test]
    fn merges_in_key_order_with_run_tiebreak() {
        let a = sorted_buf(&[(b"b", b"a1"), (b"d", b"a2")]);
        let b = sorted_buf(&[(b"a", b"b1"), (b"b", b"b2"), (b"b", b"b3")]);
        let c = sorted_buf(&[(b"c", b"c1")]);
        let runs = [Run::sorted(&a), Run::sorted(&b), Run::sorted(&c)];
        let got = merged(&runs);
        let want: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"a".to_vec(), b"b1".to_vec()),
            (b"b".to_vec(), b"a1".to_vec()), // run 0 wins the b-tie
            (b"b".to_vec(), b"b2".to_vec()),
            (b"b".to_vec(), b"b3".to_vec()),
            (b"c".to_vec(), b"c1".to_vec()),
            (b"d".to_vec(), b"a2".to_vec()),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn merge_matches_reference_sort_on_many_runs() {
        // 7 runs (non-power-of-two) of varying sizes with heavy key overlap.
        let mut bufs = Vec::new();
        for r in 0..7u64 {
            let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for i in 0..(10 + 13 * r) {
                let key = ((i * 7 + r * 3) % 17).to_string().into_bytes();
                pairs.push((key, format!("r{r}i{i}").into_bytes()));
            }
            let mut b = KvBuffer::new();
            for (k, v) in &pairs {
                b.push(k, v);
            }
            b.sort_unstable();
            bufs.push((b, pairs));
        }
        // Reference: task-ordered concatenation, stable sort by key.
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (_, pairs) in &bufs {
            reference.extend(pairs.iter().cloned());
        }
        reference.sort_by(|x, y| x.0.cmp(&y.0));
        let runs: Vec<Run<'_>> = bufs.iter().map(|(b, _)| Run::sorted(b)).collect();
        assert_eq!(merged(&runs), reference);
    }

    #[test]
    fn empty_and_single_run_edges() {
        assert_eq!(merged(&[]), Vec::new());
        let empty = KvBuffer::new();
        assert_eq!(merged(&[Run::sorted(&empty)]), Vec::new());
        let one = sorted_buf(&[(b"k", b"v")]);
        assert_eq!(
            merged(&[Run::sorted(&one)]),
            vec![(b"k".to_vec(), b"v".to_vec())]
        );
    }

    #[test]
    fn selection_runs_merge_like_full_runs() {
        let mut buf = KvBuffer::new();
        for (k, v) in [(b"c", b"1"), (b"a", b"2"), (b"b", b"3"), (b"a", b"4")] {
            buf.push(k, v);
        }
        buf.sort_unstable(); // a2 a4 b3 c1
        let evens: Vec<u32> = vec![0, 2]; // a2, b3
        let odds: Vec<u32> = vec![1, 3]; // a4, c1
        let runs = [Run::select(&buf, &evens), Run::select(&buf, &odds)];
        let got = merged(&runs);
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), b"2".to_vec()),
                (b"a".to_vec(), b"4".to_vec()),
                (b"b".to_vec(), b"3".to_vec()),
                (b"c".to_vec(), b"1".to_vec()),
            ]
        );
    }

    #[test]
    fn grouped_merge_groups_and_limits() {
        let a = sorted_buf(&[(b"a", b"1"), (b"b", b"2")]);
        let b = sorted_buf(&[(b"a", b"3"), (b"c", b"4")]);
        let runs = [Run::sorted(&a), Run::sorted(&b)];
        let mut groups: Vec<(Vec<u8>, usize)> = Vec::new();
        let n = merge_key_groups(&runs, None, |k, vs| groups.push((k.to_vec(), vs.len())));
        assert_eq!(n, 4);
        assert_eq!(
            groups,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 1), (b"c".to_vec(), 1)]
        );
        // A limit cutting the first group mid-way still emits the partial
        // group (prefix semantics of the fault kill point).
        let mut cut: Vec<(Vec<u8>, usize)> = Vec::new();
        let n = merge_key_groups(&runs, Some(1), |k, vs| cut.push((k.to_vec(), vs.len())));
        assert_eq!(n, 1);
        assert_eq!(cut, vec![(b"a".to_vec(), 1)]);
        assert_eq!(merge_key_groups(&runs, Some(0), |_, _| panic!()), 0);
    }
}
