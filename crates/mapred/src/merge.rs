//! K-way merge of pre-sorted shuffle runs.
//!
//! Each map task leaves one key-sorted run per reduce partition; the
//! reduce-side shuffle is a [`LoserTree`] merge of those runs that feeds the
//! reducer a *streaming* sequence of key groups ([`merge_key_groups`])
//! instead of a materialized, re-sorted `Vec` of pairs.
//!
//! ## Determinism
//!
//! The merge is a total order: pairs are compared by key bytes and ties are
//! broken by run index (runs are supplied in canonical map-task order).
//! Because every run is itself sorted by `(key, emit order)`
//! ([`KvBuffer::sort_unstable`]), the merged sequence is exactly what the
//! old engine's stable reduce-side sort over the task-ordered concatenation
//! produced — equal keys surface in (map task, emit) order, byte for byte.

use crate::codec::KvBuffer;

/// One pre-sorted run: a [`KvBuffer`] plus an optional selection of entry
/// indices (a map task's slice of one reduce partition), optionally
/// windowed to a contiguous subrange — the unit the shard-parallel merge
/// cuts runs into. With no selection and no window the whole buffer is the
/// run.
#[derive(Clone, Copy)]
pub struct Run<'a> {
    buf: &'a KvBuffer,
    sel: Option<&'a [u32]>,
    /// First position of the window within the (selected) run.
    lo: usize,
    /// Window length.
    n: usize,
}

impl<'a> Run<'a> {
    /// A run covering the whole (pre-sorted) buffer.
    pub fn sorted(buf: &'a KvBuffer) -> Self {
        Run {
            buf,
            sel: None,
            lo: 0,
            n: buf.len(),
        }
    }

    /// A run over a selection of entry indices, in selection order (the
    /// indices must point at keys in non-decreasing order).
    pub fn select(buf: &'a KvBuffer, sel: &'a [u32]) -> Self {
        Run {
            buf,
            sel: Some(sel),
            lo: 0,
            n: sel.len(),
        }
    }

    /// The window `[start, end)` of this run, in run positions. The new
    /// run sees positions `0..end - start`.
    pub fn subrange(&self, start: usize, end: usize) -> Run<'a> {
        debug_assert!(start <= end && end <= self.n);
        Run {
            buf: self.buf,
            sel: self.sel,
            lo: self.lo + start,
            n: end - start,
        }
    }

    /// Number of pairs in the run.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the run holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn entry(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        match self.sel {
            Some(s) => s[self.lo + i] as usize,
            None => self.lo + i,
        }
    }

    /// Key bytes of the run's `i`-th pair.
    #[inline]
    pub fn key(&self, i: usize) -> &'a [u8] {
        self.buf.key(self.entry(i))
    }

    /// Value bytes of the run's `i`-th pair.
    #[inline]
    pub fn value(&self, i: usize) -> &'a [u8] {
        self.buf.value(self.entry(i))
    }
}

/// A classic loser tree over `k` runs: `next()` yields `(run, index)` pairs
/// in `(key, run)` order with `O(log k)` comparisons per pair (one replay
/// path from the winning leaf to the root), versus `O(k)` for naive
/// selection and `O(log k)` with ~2× the comparisons for a binary heap.
pub struct LoserTree<'a, 'r> {
    runs: &'r [Run<'a>],
    /// Next unconsumed position in each run.
    pos: Vec<usize>,
    /// Each live run's current head key, resolved once per advance —
    /// replay comparisons touch only these cached slices instead of
    /// re-chasing selection → offset table → arena at every tree level.
    /// `None` marks an exhausted run.
    heads: Vec<Option<&'a [u8]>>,
    /// `tree[0]` is the overall winner; `tree[1..k]` hold the loser of the
    /// internal match at that node. Leaves are implicit at `k..2k`, padded
    /// to a power of two with exhausted virtual runs.
    tree: Vec<usize>,
    /// Padded leaf count (power of two, 0 when there are no runs).
    k: usize,
}

impl<'a, 'r> LoserTree<'a, 'r> {
    /// Build the tree over `runs` (each pre-sorted by key).
    pub fn new(runs: &'r [Run<'a>]) -> Self {
        let n = runs.len();
        if n == 0 {
            return LoserTree {
                runs,
                pos: Vec::new(),
                heads: Vec::new(),
                tree: Vec::new(),
                k: 0,
            };
        }
        let k = n.next_power_of_two();
        let pos = vec![0usize; n];
        let heads: Vec<Option<&'a [u8]>> = runs
            .iter()
            .map(|r| if r.is_empty() { None } else { Some(r.key(0)) })
            .collect();
        let mut lt = LoserTree {
            runs,
            pos,
            heads,
            tree: vec![usize::MAX; k],
            k,
        };
        // Initial matches, bottom-up: winners propagate, losers stay.
        let mut winners = vec![0usize; 2 * k];
        for leaf in 0..k {
            winners[k + leaf] = leaf; // leaf id == run id; >= n means virtual
        }
        for node in (1..k).rev() {
            let (a, b) = (winners[2 * node], winners[2 * node + 1]);
            if lt.beats(a, b) {
                winners[node] = a;
                lt.tree[node] = b;
            } else {
                winners[node] = b;
                lt.tree[node] = a;
            }
        }
        lt.tree[0] = winners[1];
        lt
    }

    /// Does run `a`'s head beat run `b`'s head? Exhausted (or virtual) runs
    /// lose to everything; ties break toward the lower run index.
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        let ha = if a < self.heads.len() { self.heads[a] } else { None };
        let hb = if b < self.heads.len() { self.heads[b] } else { None };
        match (ha, hb) {
            (Some(x), Some(y)) => x.cmp(y).then(a.cmp(&b)).is_lt(),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Pop the next pair in merge order: `(run index, index within run)`.
    pub fn next(&mut self) -> Option<(usize, usize)> {
        self.next_with_key().map(|(r, i, _)| (r, i))
    }

    /// Pop the next pair along with its key bytes — the key is the cached
    /// head slice, so callers on the hot path skip one arena resolution.
    pub fn next_with_key(&mut self) -> Option<(usize, usize, &'a [u8])> {
        if self.k == 0 {
            return None;
        }
        let w = self.tree[0];
        if w >= self.runs.len() {
            return None;
        }
        let key = self.heads[w]?; // None: overall winner exhausted, merge done
        let idx = self.pos[w];
        self.pos[w] += 1;
        self.heads[w] = if self.pos[w] < self.runs[w].len() {
            Some(self.runs[w].key(self.pos[w]))
        } else {
            None
        };
        // Replay the path from w's leaf to the root.
        let mut cur = w;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            let other = self.tree[node];
            if self.beats(other, cur) {
                self.tree[node] = cur;
                cur = other;
            }
            node /= 2;
        }
        self.tree[0] = cur;
        Some((w, idx, key))
    }
}

/// Merge `runs` and stream key groups to `f(key, values)` — the reduce-side
/// shuffle in one pass, never materializing the merged pair list. With
/// `limit = Some(n)` consumption stops after `n` pairs, emitting the final
/// (possibly cut) group — the fault-injection kill point, matching the old
/// engine's `kvs[..limit]` prefix semantics. Returns the pairs consumed.
pub fn merge_key_groups<F: FnMut(&[u8], &[&[u8]])>(
    runs: &[Run<'_>],
    limit: Option<usize>,
    mut f: F,
) -> usize {
    let cap = limit.unwrap_or(usize::MAX);
    if cap == 0 {
        return 0;
    }
    let mut lt = LoserTree::new(runs);
    let Some((r0, i0, k0)) = lt.next_with_key() else {
        return 0;
    };
    let mut cur_key = k0;
    let mut values: Vec<&[u8]> = vec![runs[r0].value(i0)];
    let mut consumed = 1usize;
    while consumed < cap {
        let Some((r, i, key)) = lt.next_with_key() else {
            break;
        };
        if key != cur_key {
            f(cur_key, &values);
            values.clear();
            cur_key = key;
        }
        values.push(runs[r].value(i));
        consumed += 1;
    }
    f(cur_key, &values);
    consumed
}

/// Cut a set of pre-sorted runs into at most `shards` disjoint key ranges,
/// each a full set of run windows ready for its own independent merge.
///
/// Cut keys are chosen from per-run quantile samples, then applied to every
/// run with the same `first position whose key >= cut` rule — so all
/// occurrences of any key, across all runs, land in exactly one shard, and
/// no key group ever straddles a shard boundary. Within each shard the runs
/// keep their original order (empty windows included), so the loser tree's
/// run-index tie-break inside a shard agrees with the serial merge.
/// Concatenating the shard merges in shard order therefore reproduces the
/// serial merge byte for byte: shard ranges partition the key space in
/// ascending order, and within a range the merge is the same merge.
///
/// The returned plan may have fewer than `shards` non-empty shards (duplicate
/// cut candidates collapse), and some shards may be empty; both are harmless
/// to merge and preserve the concatenation identity.
pub fn plan_shards<'a>(runs: &[Run<'a>], shards: usize) -> Vec<Vec<Run<'a>>> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    if shards <= 1 || total == 0 {
        return vec![runs.to_vec()];
    }

    // Candidate cut keys: each run contributes its quantile keys. Sampling
    // every run keeps the cuts near the true global quantiles even when run
    // key ranges are disjoint or heavily skewed.
    let mut cands: Vec<&'a [u8]> = Vec::new();
    for r in runs {
        if r.is_empty() {
            continue;
        }
        for j in 1..shards {
            let i = (r.len() * j / shards).min(r.len() - 1);
            cands.push(r.key(i));
        }
    }
    cands.sort_unstable();
    cands.dedup();

    // Pick `shards - 1` cuts at candidate quantiles, deduped: equal picks
    // would only manufacture empty shards.
    let mut cuts: Vec<&'a [u8]> = Vec::new();
    for s in 1..shards {
        let i = cands.len() * s / shards;
        if i < cands.len() && cuts.last() != Some(&cands[i]) {
            cuts.push(cands[i]);
        }
    }

    let mut out: Vec<Vec<Run<'a>>> = Vec::with_capacity(cuts.len() + 1);
    let mut prev: Vec<usize> = vec![0; runs.len()];
    for &cut in &cuts {
        let mut shard: Vec<Run<'a>> = Vec::with_capacity(runs.len());
        for (ri, r) in runs.iter().enumerate() {
            let b = lower_bound(r, prev[ri], cut);
            shard.push(r.subrange(prev[ri], b));
            prev[ri] = b;
        }
        out.push(shard);
    }
    out.push(
        runs.iter()
            .enumerate()
            .map(|(ri, r)| r.subrange(prev[ri], r.len()))
            .collect(),
    );
    out
}

/// First position in `[from, r.len())` whose key is `>= cut` (the run is
/// sorted by key, so this is a plain binary search).
fn lower_bound(r: &Run<'_>, from: usize, cut: &[u8]) -> usize {
    let (mut lo, mut hi) = (from, r.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if r.key(mid) < cut {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// [`merge_key_groups`] over a [`plan_shards`] plan, executed serially in
/// shard order: `f(shard, key, values)` sees exactly the groups the serial
/// merge would produce, in the same order, with the shard index attached.
/// The engine runs the same plan with one merge per pool task; this serial
/// driver is the oracle the property tests compare both against.
pub fn shard_merge_key_groups<F: FnMut(usize, &[u8], &[&[u8]])>(
    runs: &[Run<'_>],
    shards: usize,
    mut f: F,
) -> usize {
    let mut consumed = 0usize;
    for (s, shard) in plan_shards(runs, shards).iter().enumerate() {
        consumed += merge_key_groups(shard, None, |k, vs| f(s, k, vs));
    }
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_buf(pairs: &[(&[u8], &[u8])]) -> KvBuffer {
        let mut b = KvBuffer::new();
        for (k, v) in pairs {
            b.push(k, v);
        }
        b.sort_unstable();
        b
    }

    fn merged(runs: &[Run<'_>]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut lt = LoserTree::new(runs);
        let mut out = Vec::new();
        while let Some((r, i)) = lt.next() {
            out.push((runs[r].key(i).to_vec(), runs[r].value(i).to_vec()));
        }
        out
    }

    #[test]
    fn merges_in_key_order_with_run_tiebreak() {
        let a = sorted_buf(&[(b"b", b"a1"), (b"d", b"a2")]);
        let b = sorted_buf(&[(b"a", b"b1"), (b"b", b"b2"), (b"b", b"b3")]);
        let c = sorted_buf(&[(b"c", b"c1")]);
        let runs = [Run::sorted(&a), Run::sorted(&b), Run::sorted(&c)];
        let got = merged(&runs);
        let want: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"a".to_vec(), b"b1".to_vec()),
            (b"b".to_vec(), b"a1".to_vec()), // run 0 wins the b-tie
            (b"b".to_vec(), b"b2".to_vec()),
            (b"b".to_vec(), b"b3".to_vec()),
            (b"c".to_vec(), b"c1".to_vec()),
            (b"d".to_vec(), b"a2".to_vec()),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn merge_matches_reference_sort_on_many_runs() {
        // 7 runs (non-power-of-two) of varying sizes with heavy key overlap.
        let mut bufs = Vec::new();
        for r in 0..7u64 {
            let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            for i in 0..(10 + 13 * r) {
                let key = ((i * 7 + r * 3) % 17).to_string().into_bytes();
                pairs.push((key, format!("r{r}i{i}").into_bytes()));
            }
            let mut b = KvBuffer::new();
            for (k, v) in &pairs {
                b.push(k, v);
            }
            b.sort_unstable();
            bufs.push((b, pairs));
        }
        // Reference: task-ordered concatenation, stable sort by key.
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (_, pairs) in &bufs {
            reference.extend(pairs.iter().cloned());
        }
        reference.sort_by(|x, y| x.0.cmp(&y.0));
        let runs: Vec<Run<'_>> = bufs.iter().map(|(b, _)| Run::sorted(b)).collect();
        assert_eq!(merged(&runs), reference);
    }

    #[test]
    fn empty_and_single_run_edges() {
        assert_eq!(merged(&[]), Vec::new());
        let empty = KvBuffer::new();
        assert_eq!(merged(&[Run::sorted(&empty)]), Vec::new());
        let one = sorted_buf(&[(b"k", b"v")]);
        assert_eq!(
            merged(&[Run::sorted(&one)]),
            vec![(b"k".to_vec(), b"v".to_vec())]
        );
    }

    #[test]
    fn selection_runs_merge_like_full_runs() {
        let mut buf = KvBuffer::new();
        for (k, v) in [(b"c", b"1"), (b"a", b"2"), (b"b", b"3"), (b"a", b"4")] {
            buf.push(k, v);
        }
        buf.sort_unstable(); // a2 a4 b3 c1
        let evens: Vec<u32> = vec![0, 2]; // a2, b3
        let odds: Vec<u32> = vec![1, 3]; // a4, c1
        let runs = [Run::select(&buf, &evens), Run::select(&buf, &odds)];
        let got = merged(&runs);
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), b"2".to_vec()),
                (b"a".to_vec(), b"4".to_vec()),
                (b"b".to_vec(), b"3".to_vec()),
                (b"c".to_vec(), b"1".to_vec()),
            ]
        );
    }

    #[test]
    fn grouped_merge_groups_and_limits() {
        let a = sorted_buf(&[(b"a", b"1"), (b"b", b"2")]);
        let b = sorted_buf(&[(b"a", b"3"), (b"c", b"4")]);
        let runs = [Run::sorted(&a), Run::sorted(&b)];
        let mut groups: Vec<(Vec<u8>, usize)> = Vec::new();
        let n = merge_key_groups(&runs, None, |k, vs| groups.push((k.to_vec(), vs.len())));
        assert_eq!(n, 4);
        assert_eq!(
            groups,
            vec![(b"a".to_vec(), 2), (b"b".to_vec(), 1), (b"c".to_vec(), 1)]
        );
        // A limit cutting the first group mid-way still emits the partial
        // group (prefix semantics of the fault kill point).
        let mut cut: Vec<(Vec<u8>, usize)> = Vec::new();
        let n = merge_key_groups(&runs, Some(1), |k, vs| cut.push((k.to_vec(), vs.len())));
        assert_eq!(n, 1);
        assert_eq!(cut, vec![(b"a".to_vec(), 1)]);
        assert_eq!(merge_key_groups(&runs, Some(0), |_, _| panic!()), 0);
    }

    #[test]
    fn subrange_windows_a_run() {
        let buf = sorted_buf(&[(b"a", b"1"), (b"b", b"2"), (b"c", b"3"), (b"d", b"4")]);
        let r = Run::sorted(&buf);
        let w = r.subrange(1, 3);
        assert_eq!(w.len(), 2);
        assert_eq!(w.key(0), b"b");
        assert_eq!(w.value(1), b"3");
        let ww = w.subrange(1, 2);
        assert_eq!(ww.len(), 1);
        assert_eq!(ww.key(0), b"c");
        assert!(w.subrange(1, 1).is_empty());
    }

    /// Flatten a shard plan's groups: `(shard, key, values)` triples in
    /// emission order.
    fn sharded_groups(
        runs: &[Run<'_>],
        shards: usize,
    ) -> (usize, Vec<(usize, Vec<u8>, Vec<Vec<u8>>)>) {
        let mut out = Vec::new();
        let n = shard_merge_key_groups(runs, shards, |s, k, vs| {
            out.push((s, k.to_vec(), vs.iter().map(|v| v.to_vec()).collect()));
        });
        (n, out)
    }

    fn serial_groups(runs: &[Run<'_>]) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        let mut out = Vec::new();
        merge_key_groups(runs, None, |k, vs| {
            out.push((k.to_vec(), vs.iter().map(|v| v.to_vec()).collect()));
        });
        out
    }

    #[test]
    fn shard_plan_covers_without_straddling() {
        // Heavy duplicate keys across runs: every shard must own whole key
        // groups, and concatenation must equal the serial merge.
        let mut bufs = Vec::new();
        for r in 0..5u64 {
            let mut b = KvBuffer::new();
            for i in 0..(40 + 11 * r) {
                let key = ((i * 5 + r) % 13).to_string().into_bytes();
                b.push(&key, format!("r{r}i{i}").into_bytes().as_slice());
            }
            b.sort_unstable();
            bufs.push(b);
        }
        let runs: Vec<Run<'_>> = bufs.iter().map(Run::sorted).collect();
        let serial = serial_groups(&runs);
        let total: usize = runs.iter().map(|r| r.len()).sum();
        for shards in [1, 2, 3, 4, 7, 50] {
            let (n, got) = sharded_groups(&runs, shards);
            assert_eq!(n, total, "shards={shards}: every pair consumed");
            // Shard indices non-decreasing, and each key appears in exactly
            // one shard.
            for pair in got.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "shards={shards}: shard order");
                assert_ne!(pair[0].1, pair[1].1, "shards={shards}: split group");
            }
            let flat: Vec<(Vec<u8>, Vec<Vec<u8>>)> =
                got.into_iter().map(|(_, k, vs)| (k, vs)).collect();
            assert_eq!(flat, serial, "shards={shards}: concat == serial merge");
        }
    }

    #[test]
    fn shard_plan_handles_empty_and_degenerate_runs() {
        let empty = KvBuffer::new();
        let one = sorted_buf(&[(b"k", b"v")]);
        let same = sorted_buf(&[(b"k", b"1"), (b"k", b"2"), (b"k", b"3")]);
        let runs = [Run::sorted(&empty), Run::sorted(&one), Run::sorted(&same)];
        let serial = serial_groups(&runs);
        for shards in [1, 2, 4] {
            let (_, got) = sharded_groups(&runs, shards);
            let flat: Vec<(Vec<u8>, Vec<Vec<u8>>)> =
                got.into_iter().map(|(_, k, vs)| (k, vs)).collect();
            // A single key can never be split: one group, all four values,
            // tie-broken by run order.
            assert_eq!(flat, serial, "shards={shards}");
        }
        // All-empty run set.
        let runs = [Run::sorted(&empty)];
        assert_eq!(shard_merge_key_groups(&runs, 4, |_, _, _| panic!()), 0);
        let plan = plan_shards(&[], 4);
        assert_eq!(plan.len(), 1);
        assert!(plan[0].is_empty());
    }
}
