//! The MapReduce execution engine: work-stealing parallel map over splits,
//! arena-backed map-side sorted runs, a loser-tree run-merge shuffle,
//! shard-parallel streaming reduce — a faithful in-process model of the
//! Hadoop execution cycle, with real serialization at every boundary.
//!
//! Data path (see DESIGN.md "Zero-copy shuffle data path"): map tasks emit
//! into one contiguous [`KvBuffer`] arena per task; the arena's offset table
//! is sorted once map-side by `(key, emit order)` (also feeding the combiner
//! a streaming grouped pass) and spilled into compact per-`(task,
//! partition)` sorted arenas; the reduce side merges those pre-sorted runs
//! with a loser tree — each run read sequentially, front to back — and
//! streams key groups straight into the reducer. No materialized `Vec` of
//! pairs, no reduce-side re-sort, no per-record heap allocation.
//!
//! Parallel structure (see DESIGN.md §2e): both phases run through the
//! work-stealing [`pool`]. Map tasks are pool tasks; a reduce partition is
//! *flattened* into pool units — one per doomed/superseded fault attempt
//! (run serially over the partition's merged prefix, so the waste ledger is
//! worker-count-independent) plus the committed merge, which is cut into
//! key-range shards ([`crate::merge::plan_shards`]) whenever the reducer
//! declares itself key-local. Shard outputs concatenate in range order into
//! the exact byte stream of the serial merge.

use crate::bytes::Bytes;
use crate::cache::ScanCache;
use crate::codec::{BlockBuilder, KvBuffer, RecordIter};
use crate::dfs::{Dataset, SimDfs};
use crate::fault::{FaultPlan, Outcome, TaskKind};
use crate::integrity;
use crate::job::{InputSrc, Job, MapOutput, ReduceOutput};
use crate::merge::{merge_key_groups, plan_shards, Run};
use crate::metrics::{JobMetrics, RecoveryLedger, WorkflowMetrics};
use crate::pool;
use crate::resilience::{ResiliencePolicy, WorkflowError};
use std::time::Instant;

/// The reducer a key is routed to: FNV-1a ([`integrity::fnv1a`], the same
/// hash the block/spill checksums use) modulo the reducer count.
///
/// This is *the* shuffle contract — it depends only on the key bytes and the
/// partition count, never on worker threads or split layout, which is what
/// makes reruns of a workflow bit-for-bit reproducible.
#[inline]
pub fn shuffle_partition(key: &[u8], num_partitions: usize) -> usize {
    (integrity::fnv1a(key) % num_partitions.max(1) as u64) as usize
}

/// Execution engine bound to a [`SimDfs`].
#[derive(Clone)]
pub struct Engine {
    /// The simulated DFS jobs read from and write to.
    pub dfs: SimDfs,
    /// Worker thread count for map and reduce phases.
    pub workers: usize,
    /// Target output split size in bytes.
    pub split_bytes: usize,
    /// Optional fault-injection plan; `None` runs the cluster perfectly.
    pub faults: Option<FaultPlan>,
    /// Resilience policy: checksums, checkpointing, retry budgets,
    /// deadlines. Defaults keep every protection on.
    pub resilience: ResiliencePolicy,
    /// Optional cross-query scan cache. When set, jobs carrying a
    /// [`Job::cache_key`] are served from the cache on hit (the job body
    /// never runs) and inserted on miss. `None` (the default) leaves the
    /// execution path untouched.
    pub scan_cache: Option<ScanCache>,
    /// Optional persistent worker pool shared across workflows. When set,
    /// map and reduce phases run on its long-lived threads instead of
    /// spawning a fresh scoped pool per phase; its worker count overrides
    /// [`Engine::workers`] for scheduling (not for metrics semantics —
    /// results stay index-ordered either way).
    pub task_pool: Option<pool::PersistentPool>,
}

/// Per-job fault accounting, accumulated across worker threads.
#[derive(Default)]
struct FaultStats {
    map_attempts: u64,
    reduce_attempts: u64,
    failed: u64,
    speculative: u64,
    stragglers: u64,
    node_loss: u64,
    wasted_input_records: u64,
    wasted_output_bytes: u64,
    backoff_s: f64,
    corrupt_spills_detected: u64,
    integrity_reread_bytes: u64,
    silent_corruptions: u64,
}

impl FaultStats {
    fn merge(&mut self, o: FaultStats) {
        self.map_attempts += o.map_attempts;
        self.reduce_attempts += o.reduce_attempts;
        self.failed += o.failed;
        self.speculative += o.speculative;
        self.stragglers += o.stragglers;
        self.node_loss += o.node_loss;
        self.wasted_input_records += o.wasted_input_records;
        self.wasted_output_bytes += o.wasted_output_bytes;
        self.backoff_s += o.backoff_s;
        self.corrupt_spills_detected += o.corrupt_spills_detected;
        self.integrity_reread_bytes += o.integrity_reread_bytes;
        self.silent_corruptions += o.silent_corruptions;
    }
}

/// Bytes an attempt produced (emitted kvs + written records) — what gets
/// thrown away when the attempt is killed or superseded. Arena payload
/// lengths carry no framing, so these are the same sums of key + value +
/// record lengths the counters have always used.
fn map_output_size(out: &MapOutput) -> u64 {
    out.kvs.payload_bytes() + out.records.payload_bytes()
}

fn reduce_output_size(out: &ReduceOutput) -> u64 {
    out.kvs.payload_bytes() + out.records.payload_bytes()
}

/// How many key-range shards to cut one committed reduce merge into: about
/// two pool units per worker spread across the non-empty partitions, capped
/// so no shard shrinks below a useful grain. Only key-local reducers may be
/// sharded at all; everything else merges serially on one unit. The choice
/// never affects output bytes or the simulated cost — only how evenly the
/// pool can balance the merge.
fn shard_count(workers: usize, key_local: bool, partitions: usize, part_records: usize) -> usize {
    const MIN_SHARD_RECORDS: usize = 2048;
    if !key_local || workers <= 1 || part_records < 2 * MIN_SHARD_RECORDS {
        return 1;
    }
    (workers * 2)
        .div_ceil(partitions.max(1))
        .min(part_records / MIN_SHARD_RECORDS)
        .min(workers * 4)
        .max(1)
}

/// One flattened reduce-phase pool unit (see module docs).
enum UnitKind {
    /// A fault-doomed attempt: run the serial merge up to `limit` pairs,
    /// count the waste, keep nothing.
    Doomed { limit: usize },
    /// A straggler attempt superseded by its speculative duplicate: full
    /// serial merge, output discarded as waste.
    WastedFull,
    /// A committed merge over (a key-range shard of) the partition.
    Committed,
}

impl Engine {
    /// Create an engine with sensible defaults (all cores, 256 KiB splits —
    /// scaled down with the datasets, as HDFS's 128 MB is to 175M triples).
    pub fn new(dfs: SimDfs) -> Self {
        Engine {
            dfs,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            split_bytes: 256 * 1024,
            faults: None,
            resilience: ResiliencePolicy::default(),
            scan_cache: None,
            task_pool: None,
        }
    }

    /// Create an engine with an explicitly pinned worker count — what tests
    /// use so metrics never depend on the host machine's parallelism.
    pub fn with_workers(dfs: SimDfs, workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
            ..Engine::new(dfs)
        }
    }

    /// The test-pinned engine: [`rapida_testkit::PINNED_WORKERS`] workers,
    /// so metrics never depend on the host machine's parallelism and every
    /// test suite inherits worker-count changes from one place. (The
    /// constant lives in `testkit` — this crate already depends on it for
    /// the fault plan's RNG, so the helper resides here rather than there.)
    pub fn pinned(dfs: SimDfs) -> Self {
        Engine::with_workers(dfs, rapida_testkit::PINNED_WORKERS)
    }

    /// Attach a fault-injection plan (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attach a resilience policy (builder style).
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Attach a cross-query scan cache (builder style).
    pub fn with_scan_cache(mut self, cache: ScanCache) -> Self {
        self.scan_cache = Some(cache);
        self
    }

    /// Attach a persistent shared worker pool (builder style).
    pub fn with_task_pool(mut self, p: pool::PersistentPool) -> Self {
        self.task_pool = Some(p);
        self
    }

    /// Run one phase's tasks: on the shared persistent pool when attached,
    /// otherwise on a fresh scoped work-stealing pool.
    fn pool_run<T, R, F>(&self, workers: usize, tasks: Vec<T>, f: F) -> (Vec<R>, pool::PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        match &self.task_pool {
            Some(p) => p.run(tasks, f),
            None => pool::run_tasks(workers, tasks, f),
        }
    }

    /// Run a sequence of jobs, accumulating workflow metrics.
    ///
    /// Delegates to [`Engine::try_run_workflow`]; an exhausted recovery
    /// budget panics. That is unreachable for purely probabilistic fault
    /// plans (the final budgeted attempt never aborts) — only an explicit
    /// [`FaultPlan::abort_job`] scheduled with more kills than the
    /// workflow's retry budget can trip it, and harnesses doing that should
    /// call [`Engine::try_run_workflow`] and handle the typed error.
    pub fn run_workflow(&self, jobs: &[Job]) -> WorkflowMetrics {
        self.try_run_workflow(jobs)
            .unwrap_or_else(|e| panic!("workflow exhausted its recovery budget: {e}"))
    }

    /// Run a sequence of jobs with workflow-level recovery.
    ///
    /// Every committed job's output dataset is a durable checkpoint. When a
    /// job attempt is lost — a fault-plan abort ([`FaultPlan::abort_job`] /
    /// `job_abort_p`) or a simulated deadline kill
    /// ([`crate::resilience::JobDeadline`]) — the workflow restarts: with
    /// [`ResiliencePolicy::checkpointing`] on, it first re-verifies the
    /// checksums of every checkpoint before the lost job and resumes from
    /// the first job whose checkpoint is missing or unverifiable (normally
    /// the lost job itself); with checkpointing off it replays the whole
    /// DAG from job 0. Either way the recomputation is tallied in a
    /// deterministic [`RecoveryLedger`] and the final output bytes are
    /// identical to an undisturbed run.
    ///
    /// Each recovery consumes one unit of the workflow retry budget
    /// ([`ResiliencePolicy::workflow_attempts`]) and one deterministic
    /// backoff delay; an exhausted budget degrades gracefully to a typed
    /// [`WorkflowError`] carrying the partial metrics instead of panicking.
    pub fn try_run_workflow(&self, jobs: &[Job]) -> Result<WorkflowMetrics, WorkflowError> {
        let pol = &self.resilience;
        let budget = pol.workflow_attempts.max(1);
        let mut recovery = RecoveryLedger::default();
        let mut committed: Vec<Option<JobMetrics>> = (0..jobs.len()).map(|_| None).collect();
        let mut ran_before = vec![false; jobs.len()];
        let mut deadline_limit: Vec<f64> = match &pol.deadline {
            Some(dl) => vec![dl.limit_s; jobs.len()],
            None => vec![f64::INFINITY; jobs.len()],
        };
        // Recovery rounds consumed so far — the workflow retry budget.
        let mut spent = 0usize;
        // Where the last loss happened; checkpoint resume target.
        let mut resume_at = 0usize;
        let mut first_round = true;

        let assemble = |committed: &[Option<JobMetrics>], recovery: &RecoveryLedger| {
            let mut wf = WorkflowMetrics::default();
            wf.jobs = committed.iter().flatten().cloned().collect();
            wf.recovery = recovery.clone();
            wf
        };

        loop {
            // Resume point: re-verify checkpoints up to the loss and resume
            // from the first one that fails verification (graceful
            // degradation — a damaged checkpoint chain replays more jobs,
            // never produces wrong bytes).
            let from = if pol.checkpointing && !first_round {
                let mut ok = 0usize;
                for job in jobs.iter().take(resume_at) {
                    match self.dfs.verify(&job.output) {
                        Some(bytes) => {
                            ok += 1;
                            recovery.checkpoint_jobs_skipped += 1;
                            recovery.checkpoint_bytes_read += bytes;
                        }
                        None => break,
                    }
                }
                ok
            } else {
                0
            };
            first_round = false;

            let mut restart: Option<usize> = None;
            for (i, job) in jobs.iter().enumerate().skip(from) {
                let m = self.run_job_cached(job);
                if ran_before[i] {
                    recovery.jobs_replayed += 1;
                    recovery.recomputed_bytes += m.input_bytes + m.output_bytes;
                }
                ran_before[i] = true;

                // Deadline gate: the job ran, but its simulated cluster time
                // blew the per-job limit — kill it, escalate the limit for
                // the retry (deadlines model capacity guesses, not
                // correctness), and charge the workflow budget.
                let deadline_blown = pol
                    .deadline
                    .as_ref()
                    .is_some_and(|dl| dl.model.job_time(&m) > deadline_limit[i]);
                // Abort gate: the fault plan killed this job attempt
                // (node-loss at workflow granularity).
                let aborted = !deadline_blown
                    && self.faults.as_ref().is_some_and(|plan| {
                        plan.decide_job_abort(&job.name, i, spent, spent + 1 >= budget)
                    });
                if deadline_blown || aborted {
                    if deadline_blown {
                        recovery.timeout_kills += 1;
                        recovery.deadline_escalations += 1;
                        let esc = pol.deadline.as_ref().map_or(1.0, |dl| dl.escalation);
                        deadline_limit[i] *= esc.max(1.0);
                    } else {
                        recovery.aborted_job_attempts += 1;
                    }
                    recovery.wasted_bytes += m.input_bytes + m.output_bytes;
                    recovery.wasted_task_attempts += m.task_attempts();
                    spent += 1;
                    if spent >= budget {
                        let partial = assemble(&committed, &recovery);
                        return Err(if deadline_blown {
                            WorkflowError::DeadlineExhausted {
                                job: job.name.clone(),
                                job_index: i,
                                limit_s: deadline_limit[i],
                                partial,
                            }
                        } else {
                            WorkflowError::RetryBudgetExhausted {
                                job: job.name.clone(),
                                job_index: i,
                                attempts: spent,
                                partial,
                            }
                        });
                    }
                    recovery.recovery_backoff_s += pol.backoff.delay_s(spent - 1);
                    restart = Some(i);
                    break;
                }
                committed[i] = Some(m);
            }
            match restart {
                Some(i) => {
                    recovery.workflow_restarts += 1;
                    resume_at = i;
                }
                None => break,
            }
        }
        Ok(assemble(&committed, &recovery))
    }

    /// Run one job through the scan cache when both the engine carries a
    /// cache and the job carries a key; otherwise run it directly.
    ///
    /// On a hit the job body never executes: the cached [`Dataset`] is
    /// republished under the job's output name (checksummed by the DFS
    /// like any write, so checkpoint verification still works) and the
    /// committed metrics are an empty map-only record with
    /// `scan_cache_hits = 1` — the cost model charges it roughly a job
    /// startup, nothing more. On a miss the job runs normally, its output
    /// is offered to the cache, and the evictions that admission caused
    /// are charged to this job's metrics.
    fn run_job_cached(&self, job: &Job) -> JobMetrics {
        let (Some(cache), Some(key)) = (&self.scan_cache, &job.cache_key) else {
            return self.run_job(job);
        };
        if let Some(ds) = cache.get(key) {
            self.dfs.put(&job.output, ds);
            return JobMetrics {
                name: job.name.clone(),
                map_only: true,
                scan_cache_hits: 1,
                ..Default::default()
            };
        }
        let mut m = self.run_job(job);
        if let Some(out) = self.dfs.peek(&job.output) {
            m.scan_cache_evictions = cache.insert(key, out);
        }
        m.scan_cache_misses = 1;
        m
    }

    /// Run one job to completion, returning its metrics.
    pub fn run_job(&self, job: &Job) -> JobMetrics {
        let start = Instant::now();
        let mut metrics = JobMetrics {
            name: job.name.clone(),
            map_only: job.is_map_only(),
            ..Default::default()
        };

        // Gather input splits: (dataset index, block, known record count).
        // The integrity read path ([`SimDfs::fetch`]) verifies each block's
        // checksum against the fault plan's injected read corruption and
        // re-reads from replicas; with checksums disabled a corrupted copy
        // flows through silently — the detection being load-bearing is what
        // the divergence tests demonstrate.
        let mut splits: Vec<(usize, Bytes, Option<usize>)> = Vec::new();
        for (di, name) in job.inputs.iter().enumerate() {
            if let Some((ds, integ)) =
                self.dfs
                    .fetch(name, self.faults.as_ref(), self.resilience.checksums)
            {
                metrics.corrupt_blocks_detected += integ.corrupt_blocks;
                metrics.integrity_reread_bytes += integ.reread_bytes;
                metrics.silent_corruptions += integ.silent;
                metrics.input_bytes += ds.total_bytes() as u64;
                metrics.input_records += ds.records as u64;
                let Dataset {
                    blocks,
                    block_records,
                    ..
                } = ds;
                let counts_known = block_records.len() == blocks.len();
                for (bi, b) in blocks.into_iter().enumerate() {
                    let n = if counts_known {
                        Some(block_records[bi])
                    } else {
                        None
                    };
                    splits.push((di, b, n));
                }
            }
        }
        metrics.map_tasks = splits.len();

        let num_partitions = job.num_reducers.max(1);
        // Per-map-task results, merged after the parallel section.
        // `parts[p]` is the task's compact, key-sorted spill arena for
        // reduce partition `p` — one pre-sorted run per (task, partition),
        // ready for the reduce-side loser-tree merge to read sequentially.
        struct MapResult {
            parts: Vec<KvBuffer>,
            /// FNV-1a checksum of each spill in `parts`, recorded at spill
            /// time — the reference the verify-on-commit gate compares
            /// against. Empty when no spill integrity is needed.
            spill_sums: Vec<u64>,
            records: crate::codec::RecBuffer,
            raw_kv_records: u64,
            raw_kv_bytes: u64,
            segments_skipped: u64,
            input_bytes_pruned: u64,
            corrupt_records: u64,
        }

        // Record spill checksums only when the plan can corrupt spills and
        // the policy verifies them — the bytes to compare against.
        let spill_guard = self.resilience.checksums
            && self
                .faults
                .as_ref()
                .is_some_and(|plan| plan.spill_corrupt_p > 0.0);

        let workers = self.workers.max(1);
        // With fewer splits than workers, idle workers lend themselves to
        // the per-task sort: the offset-table sort runs chunked across
        // `sort_threads` scoped threads, bit-identical to the serial sort
        // (the comparison key is a total order).
        let sort_threads = if splits.is_empty() {
            1
        } else {
            (workers / splits.len()).max(1)
        };

        // Map phase through the work-stealing pool: one task per split.
        // Results come back in task index order — the canonical order
        // downstream block layout and equal-key value order depend on —
        // regardless of worker count, steal interleaving, or faults.
        let (map_outs, map_pool) =
            self.pool_run(workers, splits, |idx, (di, block, block_recs)| {
                let mut local = FaultStats::default();
                let mut out = self.run_map_task(job, idx, di, &block, block_recs, &mut local);

                let raw_kv_records = out.kvs.len() as u64;
                let raw_kv_bytes = out.kvs.payload_bytes();
                let mut corrupt_records = out.corrupt_records;

                let mut kvs = std::mem::take(&mut out.kvs);
                let mut parts: Vec<KvBuffer> = Vec::new();
                if !job.is_map_only() {
                    // Map-side sort: one offset-table sort per task,
                    // by (key, emit order). The payload arena never
                    // moves.
                    kvs.sort_unstable_with(sort_threads);
                    // Map-side combiner: stream the sorted run's key
                    // groups through the combiner and sort its output
                    // the same way — Hadoop's combiner contract.
                    if let Some(comb) = &job.combiner {
                        if !kvs.is_empty() {
                            let mut ctask = comb.create();
                            let mut cout = ReduceOutput::default();
                            merge_key_groups(&[Run::sorted(&kvs)], None, |key, values| {
                                ctask.reduce(key, values, &mut cout);
                            });
                            ctask.cleanup(&mut cout);
                            corrupt_records += cout.corrupt_records;
                            kvs = cout.kvs;
                            kvs.sort_unstable_with(sort_threads);
                        }
                    }
                    // Spill: copy each partition's pairs — scanning in
                    // sorted order, so every spill stays key-sorted
                    // with equal keys in emit order — into a compact
                    // per-partition arena. The reduce-side merge then
                    // reads each run front to back, sequentially. An
                    // exact-size counting pass first, so the spill
                    // arenas never reallocate.
                    let mut pidx: Vec<u32> = Vec::with_capacity(kvs.len());
                    let mut counts = vec![(0usize, 0u64); num_partitions];
                    for i in 0..kvs.len() {
                        let p = shuffle_partition(kvs.key(i), num_partitions);
                        pidx.push(p as u32);
                        counts[p].0 += 1;
                        counts[p].1 += kvs.pair_bytes(i);
                    }
                    parts = counts
                        .iter()
                        .map(|&(n, bytes)| KvBuffer::with_capacity(n, bytes as usize))
                        .collect();
                    for i in 0..kvs.len() {
                        parts[pidx[i] as usize].push(kvs.key(i), kvs.value(i));
                    }
                }
                let spill_sums = if spill_guard {
                    parts.iter().map(integrity::kv_checksum).collect()
                } else {
                    Vec::new()
                };
                (
                    MapResult {
                        parts,
                        spill_sums,
                        records: std::mem::take(&mut out.records),
                        raw_kv_records,
                        raw_kv_bytes,
                        // Committed attempt only: doomed/superseded attempts
                        // build their own MapOutput whose skip counters are
                        // discarded with the rest of their work.
                        segments_skipped: out.segments_skipped,
                        input_bytes_pruned: out.input_bytes_pruned,
                        corrupt_records,
                    },
                    local,
                )
            });
        let mut stats = FaultStats::default();
        let mut map_results: Vec<MapResult> = Vec::with_capacity(map_outs.len());
        for (r, local) in map_outs {
            stats.merge(local);
            map_results.push(r);
        }
        metrics.map_busy_max_ns = map_pool.makespan_ns();
        metrics.map_busy_total_ns = map_pool.total_busy_ns();
        metrics.steals = map_pool.steals;
        for r in &map_results {
            metrics.map_output_records += r.raw_kv_records;
            metrics.map_output_bytes += r.raw_kv_bytes;
            metrics.segments_skipped += r.segments_skipped;
            metrics.input_bytes_pruned += r.input_bytes_pruned;
            metrics.corrupt_records_skipped += r.corrupt_records;
        }

        // Verify-on-commit gate for shuffle spills. Spill corruption is a
        // pure function of (seed, job, task, partition), decided here in the
        // serial section — the ledger never depends on worker count. With
        // checksums on, the corrupted copy is checked against the sum
        // recorded at spill time, quarantined, and the clean spill re-read
        // (in the simulator: simply kept) — so a corrupt run never reaches
        // a reducer. With checksums off, the flip lands in place and flows
        // downstream silently.
        if let Some(plan) = self.faults.as_ref().filter(|p| p.spill_corrupt_p > 0.0) {
            for (t, r) in map_results.iter_mut().enumerate() {
                for p in 0..r.parts.len() {
                    if r.parts[p].is_empty() {
                        continue;
                    }
                    let Some(h) = plan.corrupt_spill(&job.name, t, p) else {
                        continue;
                    };
                    if self.resilience.checksums {
                        let mut bad = r.parts[p].clone();
                        if integrity::corrupt_kv(&mut bad, h) {
                            if integrity::kv_checksum(&bad) != r.spill_sums[p] {
                                stats.corrupt_spills_detected += 1;
                                stats.integrity_reread_bytes += r.parts[p].payload_bytes();
                            } else {
                                // A flip the checksum missed (FNV-1a makes
                                // this unconstructable, but account honestly
                                // rather than assume).
                                stats.silent_corruptions += 1;
                                r.parts[p] = bad;
                            }
                        }
                    } else if integrity::corrupt_kv(&mut r.parts[p], h) {
                        stats.silent_corruptions += 1;
                    }
                }
            }
        }

        let output_ds = if job.is_map_only() {
            // Map-only: one output block per non-empty map task.
            let mut blocks = Vec::new();
            let mut block_records = Vec::new();
            let mut records = 0usize;
            for r in &map_results {
                if r.records.is_empty() {
                    continue;
                }
                let mut bb = BlockBuilder::new();
                for rec in r.records.iter() {
                    bb.push(rec);
                }
                records += bb.records();
                block_records.push(bb.records());
                blocks.push(Bytes::from(bb.finish()));
            }
            Dataset {
                blocks,
                records,
                block_records,
            }
        } else {
            // Shuffle: hand each partition its ordered list of pre-sorted
            // runs, accounting shuffle volume off the offset tables in the
            // same pass — nothing is concatenated or re-sorted.
            let mut part_runs: Vec<Vec<Run<'_>>> =
                (0..num_partitions).map(|_| Vec::new()).collect();
            let mut part_records: Vec<usize> = vec![0; num_partitions];
            for r in &map_results {
                for (p, spill) in r.parts.iter().enumerate() {
                    if spill.is_empty() {
                        continue;
                    }
                    metrics.shuffle_records += spill.len() as u64;
                    metrics.shuffle_bytes += spill.payload_bytes();
                    part_records[p] += spill.len();
                    part_runs[p].push(Run::sorted(spill));
                }
            }
            metrics.reduce_tasks = part_runs.iter().filter(|rs| !rs.is_empty()).count();

            // Reduce phase: flatten every partition into pool units. Fault
            // decisions are a *pure* function of (job, partition, retry), so
            // the attempt script — and with it the whole waste/backoff
            // ledger except measured wasted output bytes — is computed here,
            // serially, before any unit runs. Doomed and superseded attempts
            // always merge the full partition on one unit (their kill points
            // are defined against the serial merge); only the committed
            // merge is cut into key-range shards, and only when the reducer
            // declares itself key-local.
            let reducer = job.reducer.as_ref().expect("checked map_only");
            let key_local = reducer.key_local();
            let nonempty = metrics.reduce_tasks;
            let mut units: Vec<(usize, Vec<Run<'_>>, UnitKind)> = Vec::new();
            let mut committed_units = 0usize;
            for (p_idx, (runs, total)) in part_runs
                .iter()
                .zip(part_records)
                .enumerate()
                .filter(|(_, (runs, _))| !runs.is_empty())
            {
                if let Some(plan) = &self.faults {
                    let mut retries = 0usize;
                    loop {
                        let outcome =
                            plan.decide(&job.name, TaskKind::Reduce, p_idx, retries);
                        stats.reduce_attempts += 1;
                        match outcome {
                            Outcome::Fail {
                                fraction,
                                node_loss,
                            } => {
                                // The attempt dies `limit` pairs into its
                                // merged input; merge_key_groups' limit
                                // stops mid-group exactly where the old
                                // materialized slice did. No cleanup runs.
                                let limit =
                                    ((fraction * total as f64) as usize).min(total);
                                stats.failed += 1;
                                if node_loss {
                                    stats.node_loss += 1;
                                }
                                stats.wasted_input_records += limit as u64;
                                stats.backoff_s += plan.backoff_s(retries);
                                units.push((p_idx, runs.clone(), UnitKind::Doomed { limit }));
                                retries += 1;
                            }
                            Outcome::Straggle { .. } => {
                                stats.stragglers += 1;
                                if plan.speculation {
                                    // The speculative duplicate commits;
                                    // the slow original's full output is
                                    // discarded.
                                    stats.reduce_attempts += 1;
                                    stats.speculative += 1;
                                    stats.wasted_input_records += total as u64;
                                    units.push((p_idx, runs.clone(), UnitKind::WastedFull));
                                }
                                break;
                            }
                            Outcome::Success => break,
                        }
                    }
                } else {
                    stats.reduce_attempts += 1;
                }
                let shards = shard_count(workers, key_local, nonempty, total);
                if shards <= 1 {
                    units.push((p_idx, runs.clone(), UnitKind::Committed));
                    committed_units += 1;
                } else {
                    for shard in plan_shards(runs, shards) {
                        units.push((p_idx, shard, UnitKind::Committed));
                        committed_units += 1;
                    }
                }
            }
            metrics.merge_shards = committed_units;

            // Execute the units through the pool. Every unit's work is a
            // pure function of its (partition, runs, kind) — results carry
            // (partition, committed records, measured waste) and arrive in
            // unit order, which is partition order with committed shards in
            // key-range order, so concatenation below reproduces the serial
            // merge byte for byte at any worker count.
            let (unit_results, reduce_pool) =
                self.pool_run(workers, units, |_u, (p_idx, runs, kind)| {
                    let mut task = reducer.create();
                    let mut out = ReduceOutput::default();
                    match kind {
                        UnitKind::Doomed { limit } => {
                            merge_key_groups(&runs, Some(limit), |key, values| {
                                task.reduce(key, values, &mut out);
                            });
                            (p_idx, None, reduce_output_size(&out), 0)
                        }
                        UnitKind::WastedFull => {
                            merge_key_groups(&runs, None, |key, values| {
                                task.reduce(key, values, &mut out);
                            });
                            task.cleanup(&mut out);
                            (p_idx, None, reduce_output_size(&out), 0)
                        }
                        UnitKind::Committed => {
                            merge_key_groups(&runs, None, |key, values| {
                                task.reduce(key, values, &mut out);
                            });
                            task.cleanup(&mut out);
                            (
                                p_idx,
                                Some(std::mem::take(&mut out.records)),
                                0,
                                out.corrupt_records,
                            )
                        }
                    }
                });
            metrics.reduce_busy_max_ns = reduce_pool.makespan_ns();
            metrics.reduce_busy_total_ns = reduce_pool.total_busy_ns();
            metrics.steals += reduce_pool.steals;

            // Stitch committed shard outputs back into one record stream
            // per partition (unit order is already canonical — see above),
            // and fold measured waste into the ledger.
            let mut per_part: Vec<(usize, crate::codec::RecBuffer)> = Vec::new();
            for (p_idx, out, waste, corrupt) in unit_results {
                stats.wasted_output_bytes += waste;
                metrics.corrupt_records_skipped += corrupt;
                if let Some(recs) = out {
                    match per_part.last_mut() {
                        Some((last, acc)) if *last == p_idx => acc.append(&recs),
                        _ => per_part.push((p_idx, recs)),
                    }
                }
            }
            let mut blocks = Vec::new();
            let mut block_records = Vec::new();
            let mut records = 0usize;
            for (_, recs) in per_part {
                if recs.is_empty() {
                    continue;
                }
                let mut bb = BlockBuilder::new();
                for rec in recs.iter() {
                    bb.push(rec);
                }
                records += bb.records();
                block_records.push(bb.records());
                blocks.push(Bytes::from(bb.finish()));
            }
            Dataset {
                blocks,
                records,
                block_records,
            }
        };

        if metrics.map_only {
            metrics.shuffle_records = 0;
            metrics.shuffle_bytes = 0;
        }
        metrics.output_records = output_ds.records as u64;
        metrics.output_bytes = output_ds.total_bytes() as u64;
        self.dfs.put(&job.output, output_ds);

        metrics.map_attempts = stats.map_attempts;
        metrics.reduce_attempts = stats.reduce_attempts;
        metrics.failed_attempts = stats.failed;
        metrics.speculative_attempts = stats.speculative;
        metrics.straggler_tasks = stats.stragglers;
        metrics.lost_node_tasks = stats.node_loss;
        metrics.wasted_input_records = stats.wasted_input_records;
        metrics.wasted_output_bytes = stats.wasted_output_bytes;
        metrics.backoff_s = stats.backoff_s;
        // Block-level integrity counters were recorded at split gather; the
        // spill-level counters accumulated in stats join them here.
        metrics.corrupt_spills_detected = stats.corrupt_spills_detected;
        metrics.integrity_reread_bytes += stats.integrity_reread_bytes;
        metrics.silent_corruptions += stats.silent_corruptions;

        metrics.wall = start.elapsed();
        metrics
    }

    /// Run one map task to a committed result, injecting the fault plan's
    /// outcomes attempt by attempt. The committed [`MapOutput`] is always
    /// the output of one clean full pass over the split — killed attempts
    /// only accumulate wasted-work counters — so the data flowing into the
    /// shuffle is identical to a fault-free run.
    fn run_map_task(
        &self,
        job: &Job,
        task_idx: usize,
        di: usize,
        block: &Bytes,
        block_recs: Option<usize>,
        stats: &mut FaultStats,
    ) -> MapOutput {
        let full = |out: &mut MapOutput| {
            let mut task = job.mapper.create();
            let mut n = 0u64;
            for rec in RecordIter::new(block) {
                task.map(InputSrc { dataset: di }, rec, out);
                n += 1;
            }
            task.cleanup(out);
            n
        };
        let Some(plan) = &self.faults else {
            stats.map_attempts += 1;
            let mut out = MapOutput::default();
            full(&mut out);
            return out;
        };

        let mut retries = 0usize;
        loop {
            let outcome = plan.decide(&job.name, TaskKind::Map, task_idx, retries);
            stats.map_attempts += 1;
            match outcome {
                Outcome::Fail {
                    fraction,
                    node_loss,
                } => {
                    // Genuinely run the doomed attempt over a prefix of the
                    // split (the kill point), then discard its work. No
                    // cleanup: the attempt died mid-task. The split's record
                    // count is tracked by the dataset writer; only
                    // hand-assembled datasets without counts pay a decode
                    // pass here.
                    let total =
                        block_recs.unwrap_or_else(|| RecordIter::new(block).count());
                    let limit = ((fraction * total as f64) as usize).min(total);
                    let mut task = job.mapper.create();
                    let mut wasted = MapOutput::default();
                    for rec in RecordIter::new(block).take(limit) {
                        task.map(InputSrc { dataset: di }, rec, &mut wasted);
                    }
                    stats.failed += 1;
                    if node_loss {
                        stats.node_loss += 1;
                    }
                    stats.wasted_input_records += limit as u64;
                    stats.wasted_output_bytes += map_output_size(&wasted);
                    stats.backoff_s += plan.backoff_s(retries);
                    retries += 1;
                }
                Outcome::Straggle { .. } => {
                    let mut out = MapOutput::default();
                    let read = full(&mut out);
                    stats.stragglers += 1;
                    if plan.speculation {
                        // The speculative duplicate finishes first and
                        // commits; the slow original's work is discarded.
                        stats.map_attempts += 1;
                        stats.speculative += 1;
                        stats.wasted_input_records += read;
                        stats.wasted_output_bytes += map_output_size(&out);
                        let mut dup = MapOutput::default();
                        full(&mut dup);
                        return dup;
                    }
                    return out;
                }
                Outcome::Success => {
                    let mut out = MapOutput::default();
                    full(&mut out);
                    return out;
                }
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DatasetWriter;
    use crate::job::*;
    use std::sync::Arc;

    /// Classic word count over single-word records.
    struct WcMap;
    impl MapTask for WcMap {
        fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
            out.emit(record, &[1]);
        }
    }

    struct WcReduce {
        as_output: bool,
    }
    impl ReduceTask for WcReduce {
        fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
            let total: u64 = values.iter().map(|v| v[0] as u64).sum();
            if self.as_output {
                let mut rec = key.to_vec();
                rec.push(b'=');
                rec.extend_from_slice(total.to_string().as_bytes());
                out.write(&rec);
            } else {
                // Combiner path: cap each count byte at 255 (test data is
                // small).
                out.emit(key, &[total as u8]);
            }
        }
    }

    fn word_dataset(words: &[&str]) -> Dataset {
        let mut w = DatasetWriter::new(8);
        for word in words {
            w.push(word.as_bytes());
        }
        w.finish()
    }

    fn run_wordcount(with_combiner: bool) -> (Vec<String>, JobMetrics) {
        let dfs = SimDfs::new();
        dfs.put("in", wc_input());
        let engine = Engine::pinned(dfs.clone());
        let m = engine.run_job(&wordcount_job(with_combiner));
        let out = dfs.get("out").unwrap();
        let mut lines: Vec<String> = out
            .iter_records()
            .map(|r| String::from_utf8(r.to_vec()).unwrap())
            .collect();
        lines.sort();
        (lines, m)
    }

    #[test]
    fn wordcount_correct() {
        let (lines, m) = run_wordcount(false);
        assert_eq!(lines, vec!["a=5", "b=3", "c=4"]);
        assert!(m.map_tasks > 1, "multiple splits expected");
        assert_eq!(m.input_records, 12);
        assert_eq!(m.shuffle_records, 12);
        assert_eq!(m.output_records, 3);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let (lines, m) = run_wordcount(true);
        assert_eq!(lines, vec!["a=5", "b=3", "c=4"]);
        assert!(
            m.shuffle_records < m.map_output_records,
            "combiner must shrink the shuffle: {} vs {}",
            m.shuffle_records,
            m.map_output_records
        );
    }

    /// Identity map-only job.
    struct IdMap;
    impl MapTask for IdMap {
        fn map(&mut self, _src: InputSrc, record: &[u8], out: &mut MapOutput) {
            out.write(record);
        }
    }

    #[test]
    fn map_only_job_passes_records_through() {
        let dfs = SimDfs::new();
        dfs.put("in", word_dataset(&["x", "y", "z"]));
        let job = JobBuilder::new("identity")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| IdMap)))
            .output("out")
            .build();
        let engine = Engine::pinned(dfs.clone());
        let m = engine.run_job(&job);
        assert!(m.map_only);
        assert_eq!(m.shuffle_bytes, 0);
        assert_eq!(m.output_records, 3);
        assert_eq!(dfs.get("out").unwrap().records, 3);
    }

    /// Mapper that tags records by input source — exercises multi-input jobs.
    struct TagMap;
    impl MapTask for TagMap {
        fn map(&mut self, src: InputSrc, record: &[u8], out: &mut MapOutput) {
            let mut rec = vec![b'0' + src.dataset as u8, b':'];
            rec.extend_from_slice(record);
            out.write(&rec);
        }
    }

    #[test]
    fn multi_input_sources_are_tagged() {
        let dfs = SimDfs::new();
        dfs.put("left", word_dataset(&["l"]));
        dfs.put("right", word_dataset(&["r"]));
        let job = JobBuilder::new("tag")
            .input("left")
            .input("right")
            .mapper(Arc::new(FnMapFactory(|| TagMap)))
            .output("out")
            .build();
        let engine = Engine::pinned(dfs.clone());
        engine.run_job(&job);
        let mut recs: Vec<String> = dfs
            .get("out")
            .unwrap()
            .iter_records()
            .map(|r| String::from_utf8(r.to_vec()).unwrap())
            .collect();
        recs.sort();
        assert_eq!(recs, vec!["0:l", "1:r"]);
    }

    /// Map task with per-task state + cleanup — the Algorithm 3 pattern.
    struct CountingMap {
        seen: u64,
    }
    impl MapTask for CountingMap {
        fn map(&mut self, _src: InputSrc, _record: &[u8], _out: &mut MapOutput) {
            self.seen += 1;
        }
        fn cleanup(&mut self, out: &mut MapOutput) {
            out.emit(b"count", &self.seen.to_le_bytes());
        }
    }

    struct SumReduce;
    impl ReduceTask for SumReduce {
        fn reduce(&mut self, _key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
            let total: u64 = values
                .iter()
                .map(|v| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(v);
                    u64::from_le_bytes(b)
                })
                .sum();
            out.write(total.to_string().as_bytes());
        }
    }

    #[test]
    fn cleanup_hook_supports_per_task_aggregation() {
        let dfs = SimDfs::new();
        dfs.put("in", word_dataset(&["a"; 20]));
        let job = JobBuilder::new("count")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| CountingMap { seen: 0 })))
            .reducer(Arc::new(FnReduceFactory(|| SumReduce)))
            .output("out")
            .num_reducers(1)
            .build();
        let engine = Engine::pinned(dfs.clone());
        let m = engine.run_job(&job);
        let recs: Vec<String> = dfs
            .get("out")
            .unwrap()
            .iter_records()
            .map(|r| String::from_utf8(r.to_vec()).unwrap())
            .collect();
        assert_eq!(recs, vec!["20"]);
        // One emit per map task, not per record.
        assert_eq!(m.shuffle_records as usize, m.map_tasks);
    }

    #[test]
    fn workflow_chains_jobs() {
        let dfs = SimDfs::new();
        dfs.put("in", word_dataset(&["a", "b", "a"]));
        let j1 = JobBuilder::new("j1")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| IdMap)))
            .output("mid")
            .build();
        let j2 = JobBuilder::new("j2")
            .input("mid")
            .mapper(Arc::new(FnMapFactory(|| WcMap)))
            .reducer(Arc::new(FnReduceFactory(|| WcReduce { as_output: true })))
            .output("out")
            .build();
        let engine = Engine::pinned(dfs.clone());
        let wf = engine.run_workflow(&[j1, j2]);
        assert_eq!(wf.cycles(), 2);
        assert_eq!(wf.full_cycles(), 1);
        assert_eq!(wf.map_only_cycles(), 1);
        assert_eq!(dfs.get("out").unwrap().records, 2);
    }

    #[test]
    fn keyed_job_is_served_from_the_scan_cache() {
        let cache = ScanCache::new(1 << 20);
        let run = |dfs: &SimDfs| {
            dfs.put("in", word_dataset(&["a", "b", "a"]));
            let job = JobBuilder::new("scan")
                .input("in")
                .mapper(Arc::new(FnMapFactory(|| IdMap)))
                .output("out")
                .cache_key("k:scan")
                .build();
            let engine = Engine::pinned(dfs.clone()).with_scan_cache(cache.clone());
            (engine.run_workflow(&[job]), dfs.get("out").unwrap())
        };
        let dfs1 = SimDfs::new();
        let (wf1, out1) = run(&dfs1);
        assert_eq!(wf1.total_scan_cache_misses(), 1);
        assert_eq!(wf1.total_scan_cache_hits(), 0);

        // Second workflow, fresh DFS namespace: the keyed job never runs.
        let dfs2 = SimDfs::new();
        let (wf2, out2) = run(&dfs2);
        assert_eq!(wf2.total_scan_cache_hits(), 1);
        assert_eq!(wf2.jobs[0].input_records, 0, "hit skips the job body");
        let bytes = |d: &Dataset| {
            d.blocks.iter().map(|b| b.as_ref().to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(bytes(&out1), bytes(&out2), "hit republishes identical bytes");
        // Unkeyed jobs never touch the cache.
        let stats_before = cache.stats();
        let dfs3 = SimDfs::new();
        dfs3.put("in", word_dataset(&["a"]));
        let plain = JobBuilder::new("plain")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| IdMap)))
            .output("out")
            .build();
        Engine::pinned(dfs3.clone())
            .with_scan_cache(cache.clone())
            .run_workflow(&[plain]);
        assert_eq!(cache.stats(), stats_before);
    }

    #[test]
    fn persistent_pool_engine_matches_scoped_pool_engine() {
        let run = |pool: Option<pool::PersistentPool>| {
            let dfs = SimDfs::new();
            dfs.put("in", wc_input());
            let mut engine = Engine::pinned(dfs.clone());
            engine.task_pool = pool;
            let m = engine.run_job(&wordcount_job(true));
            let bytes: Vec<Vec<u8>> = dfs
                .get("out")
                .unwrap()
                .blocks
                .iter()
                .map(|b| b.as_ref().to_vec())
                .collect();
            (bytes, m.shuffle_records, m.output_bytes)
        };
        let scoped = run(None);
        let pool = pool::PersistentPool::new(4);
        let persistent = run(Some(pool.clone()));
        assert_eq!(scoped, persistent, "same bytes and data-flow metrics");
        // The pool survives across engines/workflows.
        let again = run(Some(pool));
        assert_eq!(scoped, again);
    }

    fn wordcount_job(with_combiner: bool) -> Job {
        let mut builder = JobBuilder::new("wordcount")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| WcMap)))
            .reducer(Arc::new(FnReduceFactory(|| WcReduce { as_output: true })))
            .output("out")
            .num_reducers(3);
        if with_combiner {
            builder =
                builder.combiner(Arc::new(FnReduceFactory(|| WcReduce { as_output: false })));
        }
        builder.build()
    }

    fn wc_input() -> Dataset {
        word_dataset(&["a", "b", "a", "c", "a", "b", "a", "b", "c", "c", "c", "a"])
    }

    #[test]
    fn fault_free_run_counts_one_attempt_per_task() {
        let dfs = SimDfs::new();
        dfs.put("in", wc_input());
        let engine = Engine::pinned(dfs.clone());
        let m = engine.run_job(&wordcount_job(false));
        assert_eq!(m.map_attempts, m.map_tasks as u64);
        assert_eq!(m.reduce_attempts, m.reduce_tasks as u64);
        assert_eq!(m.extra_attempts(), 0);
        assert_eq!(m.failed_attempts, 0);
        assert_eq!(m.wasted_input_records, 0);
        assert_eq!(m.backoff_s, 0.0);
    }

    #[test]
    fn chaotic_run_recovers_to_identical_output() {
        let run = |faults: Option<FaultPlan>| {
            let dfs = SimDfs::new();
            dfs.put("in", wc_input());
            let mut engine = Engine::pinned(dfs.clone());
            engine.faults = faults;
            let m = engine.run_job(&wordcount_job(true));
            let bytes: Vec<Vec<u8>> = dfs
                .get("out")
                .unwrap()
                .blocks
                .iter()
                .map(|b| b.as_ref().to_vec())
                .collect();
            (bytes, m)
        };
        let (golden, clean) = run(None);
        let (chaotic, m) = run(Some(FaultPlan::chaotic(1)));
        assert_eq!(golden, chaotic, "recovered run must be bit-identical");
        // Committed data-flow metrics match the fault-free run exactly.
        assert_eq!(m.shuffle_records, clean.shuffle_records);
        assert_eq!(m.shuffle_bytes, clean.shuffle_bytes);
        assert_eq!(m.output_bytes, clean.output_bytes);
        // ... while the attempt ledger shows the chaos.
        assert!(m.extra_attempts() > 0, "chaotic plan must cost attempts");
    }

    #[test]
    fn injected_failures_are_ledgered() {
        let dfs = SimDfs::new();
        dfs.put("in", wc_input());
        let engine = Engine::pinned(dfs.clone())
            .with_faults(FaultPlan::failures_only(5, 0.9));
        let m = engine.run_job(&wordcount_job(false));
        assert!(m.failed_attempts > 0);
        assert_eq!(
            m.task_attempts(),
            (m.map_tasks + m.reduce_tasks) as u64 + m.failed_attempts,
        );
        assert!(m.backoff_s > 0.0);
        assert!(m.wasted_output_bytes > 0 || m.wasted_input_records > 0);
    }

    #[test]
    fn node_loss_retries_every_task_on_the_node() {
        let dfs = SimDfs::new();
        dfs.put("in", wc_input());
        let plan = FaultPlan {
            nodes: 2,
            lost_node: Some(0),
            ..FaultPlan::new(0)
        };
        let engine = Engine::pinned(dfs.clone()).with_faults(plan.clone());
        let m = engine.run_job(&wordcount_job(false));
        let on_lost_node = (0..m.map_tasks).filter(|t| plan.node_of(*t) == 0).count()
            + (0..3).filter(|p| plan.node_of(*p) == 0).count().min(m.reduce_tasks);
        assert!(m.lost_node_tasks > 0);
        assert!(m.lost_node_tasks as usize <= on_lost_node);
        let out: Vec<String> = dfs
            .get("out")
            .unwrap()
            .iter_records()
            .map(|r| String::from_utf8(r.to_vec()).unwrap())
            .collect();
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["a=5", "b=3", "c=4"]);
    }

    #[test]
    fn stragglers_without_speculation_are_counted_not_duplicated() {
        let dfs = SimDfs::new();
        dfs.put("in", wc_input());
        let plan = FaultPlan {
            straggler_p: 1.0,
            straggler_slowdown: 4.0,
            speculation: false,
            ..FaultPlan::new(2)
        };
        let engine = Engine::pinned(dfs.clone()).with_faults(plan);
        let m = engine.run_job(&wordcount_job(false));
        assert_eq!(
            m.straggler_tasks,
            (m.map_tasks + m.reduce_tasks) as u64,
            "every task straggles at p=1"
        );
        assert_eq!(m.speculative_attempts, 0);
        assert_eq!(m.extra_attempts(), 0);
    }

    #[test]
    fn speculation_duplicates_stragglers() {
        let dfs = SimDfs::new();
        dfs.put("in", wc_input());
        let plan = FaultPlan {
            straggler_p: 1.0,
            straggler_slowdown: 4.0,
            ..FaultPlan::new(2)
        };
        let engine = Engine::pinned(dfs.clone()).with_faults(plan);
        let m = engine.run_job(&wordcount_job(false));
        assert_eq!(m.speculative_attempts, (m.map_tasks + m.reduce_tasks) as u64);
        assert_eq!(m.extra_attempts(), m.speculative_attempts);
        assert!(m.wasted_input_records > 0, "superseded attempts are waste");
    }

    /// A larger keyed dataset so committed reduce merges clear the
    /// MIN_SHARD_RECORDS floor and genuinely shard.
    fn big_keyed_dataset(n: usize) -> Dataset {
        let mut w = DatasetWriter::new(64 * 1024);
        let mut x = 0x9e37_79b9_u64;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let rec = format!("k{:05}", (x.wrapping_add(i as u64)) % 512);
            w.push(rec.as_bytes());
        }
        w.finish()
    }

    struct CountReduce;
    impl ReduceTask for CountReduce {
        fn reduce(&mut self, key: &[u8], values: &[&[u8]], out: &mut ReduceOutput) {
            let mut rec = key.to_vec();
            rec.push(b'=');
            rec.extend_from_slice(values.len().to_string().as_bytes());
            out.write(&rec);
        }
    }

    fn big_count_job(key_local: bool) -> Job {
        let reducer: Arc<dyn ReduceTaskFactory> = if key_local {
            Arc::new(KeyLocal(FnReduceFactory(|| CountReduce)))
        } else {
            Arc::new(FnReduceFactory(|| CountReduce))
        };
        JobBuilder::new("bigcount")
            .input("in")
            .mapper(Arc::new(FnMapFactory(|| WcMap)))
            .reducer(reducer)
            .output("out")
            .num_reducers(2)
            .build()
    }

    fn run_big_count(workers: usize, key_local: bool) -> (Vec<Vec<u8>>, JobMetrics) {
        let dfs = SimDfs::new();
        dfs.put("in", big_keyed_dataset(12_000));
        let engine = Engine::with_workers(dfs.clone(), workers);
        let m = engine.run_job(&big_count_job(key_local));
        let bytes: Vec<Vec<u8>> = dfs
            .get("out")
            .unwrap()
            .blocks
            .iter()
            .map(|b| b.as_ref().to_vec())
            .collect();
        (bytes, m)
    }

    #[test]
    fn sharded_key_local_reduce_is_byte_identical_to_serial() {
        let (golden, m1) = run_big_count(1, true);
        assert_eq!(
            m1.merge_shards, m1.reduce_tasks,
            "one worker must not shard"
        );
        for workers in [2, 4, 8] {
            let (sharded, m) = run_big_count(workers, true);
            assert_eq!(
                golden, sharded,
                "sharded merge must reproduce the serial bytes at {workers} workers"
            );
            assert!(
                m.merge_shards > m.reduce_tasks,
                "key-local reduce over 12k records should shard at {workers} workers \
                 (got {} shards for {} tasks)",
                m.merge_shards,
                m.reduce_tasks
            );
            assert_eq!(m.output_bytes, m1.output_bytes);
            assert_eq!(m.reduce_attempts, m1.reduce_attempts);
        }
    }

    #[test]
    fn non_key_local_reduce_never_shards() {
        let (golden, _) = run_big_count(1, false);
        let (out, m) = run_big_count(8, false);
        assert_eq!(golden, out);
        assert_eq!(
            m.merge_shards, m.reduce_tasks,
            "a reducer that did not opt in must merge serially per partition"
        );
    }

    #[test]
    fn busy_metrics_are_populated() {
        let (_, m) = run_big_count(4, true);
        assert!(m.map_busy_max_ns > 0, "map busy makespan must be measured");
        assert!(m.reduce_busy_max_ns > 0, "reduce busy makespan must be measured");
        assert!(m.map_busy_total_ns >= m.map_busy_max_ns);
        assert!(m.reduce_busy_total_ns >= m.reduce_busy_max_ns);
        assert_eq!(m.busy_makespan_ns(), m.map_busy_max_ns + m.reduce_busy_max_ns);
    }

    #[test]
    fn sharded_reduce_survives_chaos_with_identical_bytes_and_ledger() {
        let run = |workers: usize, faults: Option<FaultPlan>| {
            let dfs = SimDfs::new();
            dfs.put("in", big_keyed_dataset(12_000));
            let mut engine = Engine::with_workers(dfs.clone(), workers);
            engine.faults = faults;
            let m = engine.run_job(&big_count_job(true));
            let bytes: Vec<Vec<u8>> = dfs
                .get("out")
                .unwrap()
                .blocks
                .iter()
                .map(|b| b.as_ref().to_vec())
                .collect();
            (bytes, m)
        };
        let (golden, _) = run(1, None);
        let (chaos1, m1) = run(1, Some(FaultPlan::chaotic(7)));
        let (chaos8, m8) = run(8, Some(FaultPlan::chaotic(7)));
        assert_eq!(golden, chaos1);
        assert_eq!(golden, chaos8);
        // The whole fault ledger — including wasted output bytes measured
        // during execution — is worker-count-independent because doomed and
        // superseded attempts always run the serial full-partition merge.
        assert_eq!(m1.reduce_attempts, m8.reduce_attempts);
        assert_eq!(m1.failed_attempts, m8.failed_attempts);
        assert_eq!(m1.wasted_input_records, m8.wasted_input_records);
        assert_eq!(m1.wasted_output_bytes, m8.wasted_output_bytes);
        assert_eq!(m1.backoff_s, m8.backoff_s);
    }

    #[test]
    fn missing_input_dataset_is_empty() {
        let dfs = SimDfs::new();
        let job = JobBuilder::new("empty")
            .input("nope")
            .mapper(Arc::new(FnMapFactory(|| IdMap)))
            .output("out")
            .build();
        let engine = Engine::pinned(dfs.clone());
        let m = engine.run_job(&job);
        assert_eq!(m.input_records, 0);
        assert_eq!(m.output_records, 0);
        assert!(dfs.contains("out"));
    }
}
