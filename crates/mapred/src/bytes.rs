//! A cheap-to-clone immutable byte buffer: the in-tree replacement for the
//! `bytes` crate's `Bytes`.
//!
//! A [`Bytes`] is an `Arc<[u8]>` plus a window, so cloning a dataset block
//! (which the simulated DFS does on every `get`) is a refcount bump, and
//! slicing shares the parent allocation. Exactly the two properties the
//! engine needs — nothing else from the external crate was used.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with zero-copy slicing.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            len: 0,
        }
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-window; panics when the range is out of bounds,
    /// matching slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len,
        };
        assert!(
            lo <= hi && hi <= self.len,
            "slice {lo}..{hi} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            len: hi - lo,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::from(v),
            start: 0,
            len: v.len(),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert!(Arc::ptr_eq(&b.data, &c.data));
    }

    #[test]
    fn slice_is_a_window() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&*ss, &[3, 4]);
        assert!(Arc::ptr_eq(&b.data, &ss.data));
        assert_eq!(b.slice(..0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::from(&[1u8, 2][..]));
    }
}
