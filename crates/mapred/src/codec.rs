//! Varint-based binary record encoding.
//!
//! The sanctioned dependency list contains no serde *format* crate, so the
//! workspace uses this small hand-rolled codec: LEB128 varints for integers,
//! length-prefixed byte strings, and length-prefixed records inside blocks.
//! Shuffle data and materialized intermediates are genuinely serialized
//! through this module, which keeps the simulator's byte counts honest.

/// Append a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing the slice. Returns `None` on truncation.
#[inline]
pub fn read_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Append an `f64` as fixed 8 bytes (little endian).
#[inline]
pub fn write_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Read an `f64`.
#[inline]
pub fn read_f64(buf: &mut &[u8]) -> Option<f64> {
    if buf.len() < 8 {
        return None;
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(head);
    Some(f64::from_bits(u64::from_le_bytes(bytes)))
}

/// Append a length-prefixed byte string.
#[inline]
pub fn write_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    write_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Read a length-prefixed byte string.
#[inline]
pub fn read_bytes<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = read_varint(buf)? as usize;
    if buf.len() < len {
        return None;
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Some(head)
}

/// Append a length-prefixed list of u64s.
pub fn write_u64_list(buf: &mut Vec<u8>, xs: &[u64]) {
    write_varint(buf, xs.len() as u64);
    for &x in xs {
        write_varint(buf, x);
    }
}

/// Read a length-prefixed list of u64s.
pub fn read_u64_list(buf: &mut &[u8]) -> Option<Vec<u64>> {
    let n = read_varint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(read_varint(buf)?);
    }
    Some(out)
}

/// A builder for a block of length-prefixed records.
#[derive(Default, Clone)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    records: usize,
}

impl BlockBuilder {
    /// New empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn push(&mut self, record: &[u8]) {
        write_bytes(&mut self.buf, record);
        self.records += 1;
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of records.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Finish, returning the raw block bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// One key/value pair borrowed from a [`KvBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvRef<'a> {
    /// The key bytes.
    pub key: &'a [u8],
    /// The value bytes.
    pub value: &'a [u8],
}

/// Offset-table entry of a [`KvBuffer`]: where one pair's payload lives.
#[derive(Debug, Clone, Copy)]
struct KvEnt {
    /// Byte offset of the key in the arena (the value follows it).
    off: u64,
    /// Key length in bytes.
    klen: u32,
    /// Value length in bytes.
    vlen: u32,
}

/// An arena-backed key/value buffer: every pair's payload lives in one
/// contiguous `data` arena (`key` immediately followed by `value`), located
/// through a compact offset table. This replaces per-record
/// `(Vec<u8>, Vec<u8>)` heap pairs on the shuffle path — emitting a pair is
/// two `extend_from_slice` calls into an amortized arena, and sorting moves
/// 16-byte table entries instead of 48-byte pair structs, never the payload.
#[derive(Default, Clone)]
pub struct KvBuffer {
    data: Vec<u8>,
    ents: Vec<KvEnt>,
}

impl KvBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New buffer with pre-reserved capacity.
    pub fn with_capacity(records: usize, payload_bytes: usize) -> Self {
        KvBuffer {
            data: Vec::with_capacity(payload_bytes),
            ents: Vec::with_capacity(records),
        }
    }

    /// Append one pair (copies both slices into the arena).
    #[inline]
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        let off = self.data.len() as u64;
        self.data.extend_from_slice(key);
        self.data.extend_from_slice(value);
        self.ents.push(KvEnt {
            off,
            klen: key.len() as u32,
            vlen: value.len() as u32,
        });
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.ents.len()
    }

    /// True if no pairs have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ents.is_empty()
    }

    /// Total payload bytes (sum of key + value lengths, no framing) — the
    /// quantity the shuffle byte counters are defined over.
    pub fn payload_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Key + value bytes of pair `i`.
    #[inline]
    pub fn pair_bytes(&self, i: usize) -> u64 {
        let e = self.ents[i];
        u64::from(e.klen) + u64::from(e.vlen)
    }

    /// Key bytes of pair `i`.
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        let e = self.ents[i];
        &self.data[e.off as usize..e.off as usize + e.klen as usize]
    }

    /// Value bytes of pair `i`.
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let e = self.ents[i];
        let start = e.off as usize + e.klen as usize;
        &self.data[start..start + e.vlen as usize]
    }

    /// Pair `i` as a [`KvRef`].
    #[inline]
    pub fn kv(&self, i: usize) -> KvRef<'_> {
        KvRef {
            key: self.key(i),
            value: self.value(i),
        }
    }

    /// Iterate pairs in table order.
    pub fn iter(&self) -> impl Iterator<Item = KvRef<'_>> {
        (0..self.len()).map(|i| self.kv(i))
    }

    /// Flip one bit inside pair `i`'s key (`in_value == false`) or value
    /// payload — the fault injector's spill-corruption primitive (see
    /// `integrity::corrupt_kv`). `bit` is an offset into the chosen span;
    /// callers guarantee the span is non-empty.
    pub fn flip_pair_bit(&mut self, i: usize, in_value: bool, bit: usize) {
        let e = self.ents[i];
        let start = if in_value {
            e.off as usize + e.klen as usize
        } else {
            e.off as usize
        };
        let span = if in_value { e.vlen } else { e.klen } as usize;
        debug_assert!(span > 0, "flip target span must be non-empty");
        self.data[start + (bit % (span * 8)) / 8] ^= 1 << (bit % 8);
    }

    /// Append every pair of `other` (copies its arena and rebases its
    /// offset table) — bulk concatenation for shard-ordered reassembly.
    pub fn append(&mut self, other: &KvBuffer) {
        let base = self.data.len() as u64;
        self.data.extend_from_slice(&other.data);
        self.ents
            .extend(other.ents.iter().map(|e| KvEnt { off: e.off + base, ..*e }));
    }

    /// Sort the offset table by `(key bytes, insertion order)` without
    /// touching the payload arena. `sort_unstable` is safe here even though
    /// the shuffle's determinism contract needs equal keys kept in emit
    /// order: the insertion index is part of the comparison key, so no two
    /// distinct entries ever compare equal — the result is exactly what a
    /// stable key-only sort would produce.
    pub fn sort_unstable(&mut self) {
        let mut order: Vec<u32> = (0..self.ents.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.key(a as usize)
                .cmp(self.key(b as usize))
                .then(a.cmp(&b))
        });
        self.ents = order.iter().map(|&i| self.ents[i as usize]).collect();
    }

    /// [`Self::sort_unstable`] with up to `threads` sorting threads: the
    /// order permutation is cut into contiguous chunks, each chunk sorted on
    /// its own scoped thread, then the chunks are k-way merged. The
    /// comparison key `(key bytes, insertion index)` is a total order, so
    /// the sorted sequence is unique — the result is bit-identical to the
    /// serial sort at every thread count.
    pub fn sort_unstable_with(&mut self, threads: usize) {
        // Below this, thread spawn + merge overhead outweighs the sort.
        const PAR_SORT_MIN: usize = 1 << 14;
        let n = self.ents.len();
        if threads <= 1 || n < PAR_SORT_MIN {
            self.sort_unstable();
            return;
        }
        let threads = threads.min(8).min(n);
        let mut order: Vec<u32> = (0..n as u32).collect();
        let chunk = n.div_ceil(threads);
        {
            let this: &KvBuffer = self;
            std::thread::scope(|scope| {
                for part in order.chunks_mut(chunk) {
                    scope.spawn(move || {
                        part.sort_unstable_by(|&a, &b| {
                            this.key(a as usize)
                                .cmp(this.key(b as usize))
                                .then(a.cmp(&b))
                        });
                    });
                }
            });
        }
        // K-way merge by repeated head selection: k is tiny (≤ 8), so the
        // linear scan per output element beats heap bookkeeping.
        let mut heads: Vec<(usize, usize)> = order
            .chunks(chunk)
            .enumerate()
            .map(|(ci, c)| (ci * chunk, ci * chunk + c.len()))
            .collect();
        let mut merged: Vec<u32> = Vec::with_capacity(n);
        loop {
            let mut best: Option<u32> = None;
            let mut best_chunk = 0usize;
            for (ci, &(pos, end)) in heads.iter().enumerate() {
                if pos >= end {
                    continue;
                }
                let cand = order[pos];
                let wins = match best {
                    None => true,
                    Some(b) => self
                        .key(cand as usize)
                        .cmp(self.key(b as usize))
                        .then(cand.cmp(&b))
                        .is_lt(),
                };
                if wins {
                    best = Some(cand);
                    best_chunk = ci;
                }
            }
            let Some(idx) = best else { break };
            heads[best_chunk].0 += 1;
            merged.push(idx);
        }
        self.ents = merged.iter().map(|&i| self.ents[i as usize]).collect();
    }
}

/// An arena-backed record list: the direct-output twin of [`KvBuffer`],
/// replacing `Vec<Vec<u8>>` on map-only and reduce output paths.
#[derive(Default, Clone)]
pub struct RecBuffer {
    data: Vec<u8>,
    /// End offset of each record; record `i` spans `ends[i-1]..ends[i]`.
    ends: Vec<u64>,
}

impl RecBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record (copies the slice into the arena).
    #[inline]
    pub fn push(&mut self, record: &[u8]) {
        self.data.extend_from_slice(record);
        self.ends.push(self.data.len() as u64);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total payload bytes (no framing).
    pub fn payload_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Record `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &[u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[start..self.ends[i] as usize]
    }

    /// Append every record of `other` (copies its arena and rebases its
    /// end-offset table) — bulk concatenation for shard-ordered reassembly.
    pub fn append(&mut self, other: &RecBuffer) {
        let base = self.data.len() as u64;
        self.data.extend_from_slice(&other.data);
        self.ends.extend(other.ends.iter().map(|e| e + base));
    }

    /// Iterate records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Iterate the records of a block produced by [`BlockBuilder`].
pub struct RecordIter<'a> {
    buf: &'a [u8],
}

impl<'a> RecordIter<'a> {
    /// Iterate over `block`.
    pub fn new(block: &'a [u8]) -> Self {
        RecordIter { buf: block }
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.buf.is_empty() {
            return None;
        }
        read_bytes(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice), Some(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut slice = buf.as_slice();
        assert_eq!(read_varint(&mut slice), None);
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_f64(&mut s), Some(v));
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        write_bytes(&mut buf, b"world");
        let mut s = buf.as_slice();
        assert_eq!(read_bytes(&mut s), Some(&b"hello"[..]));
        assert_eq!(read_bytes(&mut s), Some(&b""[..]));
        assert_eq!(read_bytes(&mut s), Some(&b"world"[..]));
        assert_eq!(read_bytes(&mut s), None);
    }

    #[test]
    fn u64_list_roundtrip() {
        let xs = vec![5u64, 0, 999999, 42];
        let mut buf = Vec::new();
        write_u64_list(&mut buf, &xs);
        let mut s = buf.as_slice();
        assert_eq!(read_u64_list(&mut s), Some(xs));
    }

    #[test]
    fn block_roundtrip() {
        let mut b = BlockBuilder::new();
        b.push(b"one");
        b.push(b"two");
        b.push(b"");
        assert_eq!(b.records(), 3);
        let block = b.finish();
        let recs: Vec<&[u8]> = RecordIter::new(&block).collect();
        assert_eq!(recs, vec![&b"one"[..], &b"two"[..], &b""[..]]);
    }

    #[test]
    fn empty_block_iterates_nothing() {
        assert_eq!(RecordIter::new(&[]).count(), 0);
    }

    #[test]
    fn kvbuffer_push_and_read_back() {
        let mut b = KvBuffer::new();
        b.push(b"alpha", b"1");
        b.push(b"", b"empty-key");
        b.push(b"beta", b"");
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload_bytes(), (5 + 1 + 9 + 4) as u64);
        assert_eq!(b.kv(0), KvRef { key: b"alpha", value: b"1" });
        assert_eq!(b.kv(1), KvRef { key: b"", value: b"empty-key" });
        assert_eq!(b.kv(2), KvRef { key: b"beta", value: b"" });
        assert_eq!(b.pair_bytes(0), 6);
        assert_eq!(b.iter().count(), 3);
    }

    #[test]
    fn kvbuffer_sort_is_stable_for_equal_keys() {
        let mut b = KvBuffer::new();
        b.push(b"b", b"1");
        b.push(b"a", b"2");
        b.push(b"b", b"3");
        b.push(b"a", b"4");
        b.sort_unstable();
        let got: Vec<(&[u8], &[u8])> = b.iter().map(|kv| (kv.key, kv.value)).collect();
        // Equal keys keep emit order — the shuffle's determinism contract.
        assert_eq!(
            got,
            vec![
                (&b"a"[..], &b"2"[..]),
                (&b"a"[..], &b"4"[..]),
                (&b"b"[..], &b"1"[..]),
                (&b"b"[..], &b"3"[..]),
            ]
        );
    }

    #[test]
    fn kvbuffer_append_rebases_offsets() {
        let mut a = KvBuffer::new();
        a.push(b"k1", b"v1");
        let mut b = KvBuffer::new();
        b.push(b"k2", b"v22");
        b.push(b"k3", b"");
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.kv(0), KvRef { key: b"k1", value: b"v1" });
        assert_eq!(a.kv(1), KvRef { key: b"k2", value: b"v22" });
        assert_eq!(a.kv(2), KvRef { key: b"k3", value: b"" });
    }

    #[test]
    fn parallel_sort_matches_serial_sort() {
        // Keys with heavy duplication so the (key, idx) tie-break matters.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut a = KvBuffer::new();
        for i in 0..40_000u64 {
            let key = (next() % 512).to_string().into_bytes();
            a.push(&key, &i.to_le_bytes());
        }
        let b = a.clone();
        a.sort_unstable();
        for threads in [1, 2, 3, 8] {
            let mut c = b.clone();
            c.sort_unstable_with(threads);
            let want: Vec<(Vec<u8>, Vec<u8>)> =
                a.iter().map(|kv| (kv.key.to_vec(), kv.value.to_vec())).collect();
            let got: Vec<(Vec<u8>, Vec<u8>)> =
                c.iter().map(|kv| (kv.key.to_vec(), kv.value.to_vec())).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        // Small buffers take the serial path and still sort correctly.
        let mut small = KvBuffer::new();
        small.push(b"b", b"1");
        small.push(b"a", b"2");
        small.sort_unstable_with(4);
        assert_eq!(small.key(0), b"a");
    }

    #[test]
    fn recbuffer_append_rebases_ends() {
        let mut a = RecBuffer::new();
        a.push(b"one");
        let mut b = RecBuffer::new();
        b.push(b"");
        b.push(b"three");
        a.append(&b);
        let got: Vec<&[u8]> = a.iter().collect();
        assert_eq!(got, vec![&b"one"[..], &b""[..], &b"three"[..]]);
    }

    #[test]
    fn recbuffer_roundtrip() {
        let mut r = RecBuffer::new();
        r.push(b"one");
        r.push(b"");
        r.push(b"three");
        assert_eq!(r.len(), 3);
        assert_eq!(r.payload_bytes(), 8);
        let got: Vec<&[u8]> = r.iter().collect();
        assert_eq!(got, vec![&b"one"[..], &b""[..], &b"three"[..]]);
    }
}
