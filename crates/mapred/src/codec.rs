//! Varint-based binary record encoding.
//!
//! The sanctioned dependency list contains no serde *format* crate, so the
//! workspace uses this small hand-rolled codec: LEB128 varints for integers,
//! length-prefixed byte strings, and length-prefixed records inside blocks.
//! Shuffle data and materialized intermediates are genuinely serialized
//! through this module, which keeps the simulator's byte counts honest.

/// Append a LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing the slice. Returns `None` on truncation.
#[inline]
pub fn read_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first()?;
        *buf = rest;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Append an `f64` as fixed 8 bytes (little endian).
#[inline]
pub fn write_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Read an `f64`.
#[inline]
pub fn read_f64(buf: &mut &[u8]) -> Option<f64> {
    if buf.len() < 8 {
        return None;
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(head);
    Some(f64::from_bits(u64::from_le_bytes(bytes)))
}

/// Append a length-prefixed byte string.
#[inline]
pub fn write_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    write_varint(buf, b.len() as u64);
    buf.extend_from_slice(b);
}

/// Read a length-prefixed byte string.
#[inline]
pub fn read_bytes<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
    let len = read_varint(buf)? as usize;
    if buf.len() < len {
        return None;
    }
    let (head, rest) = buf.split_at(len);
    *buf = rest;
    Some(head)
}

/// Append a length-prefixed list of u64s.
pub fn write_u64_list(buf: &mut Vec<u8>, xs: &[u64]) {
    write_varint(buf, xs.len() as u64);
    for &x in xs {
        write_varint(buf, x);
    }
}

/// Read a length-prefixed list of u64s.
pub fn read_u64_list(buf: &mut &[u8]) -> Option<Vec<u64>> {
    let n = read_varint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(read_varint(buf)?);
    }
    Some(out)
}

/// A builder for a block of length-prefixed records.
#[derive(Default, Clone)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    records: usize,
}

impl BlockBuilder {
    /// New empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn push(&mut self, record: &[u8]) {
        write_bytes(&mut self.buf, record);
        self.records += 1;
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of records.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Finish, returning the raw block bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Iterate the records of a block produced by [`BlockBuilder`].
pub struct RecordIter<'a> {
    buf: &'a [u8],
}

impl<'a> RecordIter<'a> {
    /// Iterate over `block`.
    pub fn new(block: &'a [u8]) -> Self {
        RecordIter { buf: block }
    }
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.buf.is_empty() {
            return None;
        }
        read_bytes(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice), Some(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 40);
        buf.pop();
        let mut slice = buf.as_slice();
        assert_eq!(read_varint(&mut slice), None);
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_f64(&mut s), Some(v));
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        write_bytes(&mut buf, b"world");
        let mut s = buf.as_slice();
        assert_eq!(read_bytes(&mut s), Some(&b"hello"[..]));
        assert_eq!(read_bytes(&mut s), Some(&b""[..]));
        assert_eq!(read_bytes(&mut s), Some(&b"world"[..]));
        assert_eq!(read_bytes(&mut s), None);
    }

    #[test]
    fn u64_list_roundtrip() {
        let xs = vec![5u64, 0, 999999, 42];
        let mut buf = Vec::new();
        write_u64_list(&mut buf, &xs);
        let mut s = buf.as_slice();
        assert_eq!(read_u64_list(&mut s), Some(xs));
    }

    #[test]
    fn block_roundtrip() {
        let mut b = BlockBuilder::new();
        b.push(b"one");
        b.push(b"two");
        b.push(b"");
        assert_eq!(b.records(), 3);
        let block = b.finish();
        let recs: Vec<&[u8]> = RecordIter::new(&block).collect();
        assert_eq!(recs, vec![&b"one"[..], &b"two"[..], &b""[..]]);
    }

    #[test]
    fn empty_block_iterates_nothing() {
        assert_eq!(RecordIter::new(&[]).count(), 0);
    }
}
