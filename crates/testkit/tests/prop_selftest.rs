//! End-to-end self-test of the property harness, used exactly the way the
//! workspace's ported test files use it: `use rapida_testkit::prelude::*;`
//! plus the `proptest::` / `prop::` path aliases.

use rapida_testkit::prelude::*;
use rapida_testkit::prop::{run, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};

proptest! {
    #[test]
    fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn vec_strategy_respects_size(v in proptest::collection::vec(any::<u8>(), 2..10)) {
        prop_assert!((2..10).contains(&v.len()));
    }

    #[test]
    fn ranges_and_options(
        n in 5u32..50,
        o in prop::option::of(1i32..4),
        s in "[a-c]{2,4}",
    ) {
        prop_assert!((5..50).contains(&n));
        if let Some(x) = o {
            prop_assert!((1..4).contains(&x));
        }
        prop_assert!((2..=4).contains(&s.len()));
        prop_assert!(s.bytes().all(|b| (b'a'..=b'c').contains(&b)));
    }

    #[test]
    fn oneof_and_map(
        v in prop_oneof![
            (0u64..10).prop_map(|n| n * 2),
            (100u64..110).prop_map(|n| n * 3),
        ]
    ) {
        prop_assert!(v % 2 == 0 || v % 3 == 0);
        prop_assert!(v < 20 || v >= 300);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
    #[test]
    fn per_test_config_is_honoured(_x in any::<u8>()) {
        // Body intentionally trivial: the test is that 7 cases run at all.
    }
}

/// A failing property must panic, and the report must carry the rerun seed
/// and a shrunk counterexample.
#[test]
fn failure_reports_seed_and_minimal_input() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        run(
            "selftest::never_big",
            Config { cases: 200, ..Config::default() },
            &(0u64..10_000),
            |n| {
                if n >= 100 {
                    Err(format!("{n} is too big"))
                } else {
                    Ok(())
                }
            },
        )
    }))
    .expect_err("property with a guaranteed counterexample must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(msg.contains("RAPIDA_PROP_SEED="), "no rerun seed in: {msg}");
    assert!(msg.contains("minimal failing input"), "no shrink report in: {msg}");
    // Greedy tape shrinking must walk 0..10_000 down to the boundary.
    assert!(
        msg.contains("100"),
        "counterexample should shrink to the boundary value 100: {msg}"
    );
}

/// Shrinking works through `prop_map` and collections: a "no vec of length
/// ≥ 3" property shrinks to exactly 3 minimal elements.
#[test]
fn shrinking_composes_through_map_and_collections() {
    let strategy = rapida_testkit::prop::collection::vec((1u64..1000).prop_map(|n| n * 2), 0..30);
    let err = catch_unwind(AssertUnwindSafe(|| {
        run(
            "selftest::len_bound",
            Config { cases: 300, ..Config::default() },
            &strategy,
            |v: Vec<u64>| {
                if v.len() >= 3 {
                    Err("too many elements".to_string())
                } else {
                    Ok(())
                }
            },
        )
    }))
    .expect_err("must find a failing vec");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    let report = msg
        .split("minimal failing input:")
        .nth(1)
        .expect("shrink report present")
        .split("error:")
        .next()
        .unwrap()
        .to_string();
    // Greedy tape shrinking must walk the length down to the boundary (3)
    // and zero every element draw, so each element is the strategy minimum:
    // (0 % 999 + 1) * 2 = 2.
    let elems = report.matches(',').count();
    assert!(
        (3..=4).contains(&elems),
        "expected a 3-element minimal vec, got ~{elems} elements in: {report}"
    );
    assert!(
        report.contains('2') && !report.chars().any(|c| matches!(c, '1' | '3'..='9')),
        "elements should shrink to the minimum value 2: {report}"
    );
}

/// Same seed, same cases: the harness is deterministic end-to-end.
#[test]
fn harness_is_deterministic() {
    thread_local! {
        static SEEN: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    fn collect(seed: u64) -> Vec<u64> {
        run(
            "selftest::collect",
            Config { cases: 16, seed, ..Config::default() },
            &(0u64..1_000_000),
            |n| {
                SEEN.with(|s| s.borrow_mut().push(n));
                Ok(())
            },
        );
        SEEN.with(|s| std::mem::take(&mut *s.borrow_mut()))
    }
    let a = collect(99);
    let b = collect(99);
    let c = collect(100);
    assert_eq!(a, b, "same seed must replay the same cases");
    assert_ne!(a, c, "different seeds must explore different cases");
    assert_eq!(a.len(), 16);
}
