//! A counting global allocator for allocation-budget tests.
//!
//! Install [`CountingAlloc`] as the `#[global_allocator]` of a test binary,
//! then bracket the code under measurement with [`reset`] / [`counters`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: rapida_testkit::alloc_gauge::CountingAlloc =
//!     rapida_testkit::alloc_gauge::CountingAlloc::new();
//!
//! rapida_testkit::alloc_gauge::reset();
//! run_hot_path();
//! let (allocs, bytes) = rapida_testkit::alloc_gauge::counters();
//! ```
//!
//! Counters are global and relaxed-atomic: measurements are only meaningful
//! when the bracketed section runs single-threaded (the typical shape is a
//! single `#[test]` driving an operator loop directly). Reallocation counts
//! as one allocation; deallocation is not tracked — the gauge measures
//! allocator traffic, not live bytes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator counting every allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Const constructor for `#[global_allocator]` statics.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every operation to `System`; the counter updates have
// no allocator-visible side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Zero the global counters.
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}

/// Read the global counters: `(allocation count, bytes requested)` since
/// the last [`reset`].
pub fn counters() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}
