//! # rapida-testkit
//!
//! In-tree, std-only test infrastructure for the RAPIDA workspace. The
//! registry is unreachable in the build environment, so everything the tests
//! and benchmarks need lives here:
//!
//! * [`rng`] — a seedable SplitMix64/xoshiro256** PRNG with the small
//!   `StdRng::seed_from_u64` / `gen_range` / `gen_bool` surface the
//!   generators use.
//! * [`prop`] — a lightweight property-testing harness with a
//!   `proptest!`-compatible macro shape, generator combinators, fixed
//!   default seeds (overridable via `RAPIDA_PROP_SEED` / `RAPIDA_PROP_CASES`)
//!   and greedy tape-based shrinking on failure.
//! * [`bench`] — a micro-benchmark harness with a criterion-compatible
//!   surface (warmup, N timed samples, median/min report, JSON output to
//!   `BENCH_<group>.json`).
//! * [`chaos`] — a deterministic chaos-test harness (`chaos!`) sweeping
//!   fault seeds × worker counts and asserting output equivalence against
//!   the fault-free golden run (width via `RAPIDA_CHAOS_SEEDS`).
//! * [`alloc_gauge`] — a counting global allocator for allocation-budget
//!   tests (install as `#[global_allocator]` in a test binary).
//!
//! Determinism is a correctness requirement here: the paper's claims are
//! about relative plan cost (MR cycles, shuffle bytes), and the test suite
//! must reproduce them bit-for-bit across runs. Every random draw in the
//! workspace flows through [`rng`], seeded explicitly.

pub mod alloc_gauge;
pub mod bench;
pub mod chaos;
pub mod prop;
pub mod rng;

/// The worker count test suites pin their engines to, so measured metrics
/// never depend on the host machine's parallelism. Engines consume it via
/// `Engine::pinned` (in `rapida-mapred`, which depends on this crate); the
/// constant lives here so every suite inherits a change from one place.
pub const PINNED_WORKERS: usize = 4;

/// One-line import for property tests, mirroring `proptest::prelude::*`.
///
/// Ported test files keep their `proptest::collection::vec(..)` /
/// `prop::option::of(..)` paths working through the module aliases exported
/// here.
pub mod prelude {
    pub use crate::prop::{
        any, Arbitrary, Config, Config as ProptestConfig, Strategy, Union,
    };
    // Path-compatibility aliases: `proptest::collection::vec`,
    // `prop::option::of`, `proptest::string::string_regex` all resolve.
    pub use crate::prop as prop;
    pub use crate::prop as proptest;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
