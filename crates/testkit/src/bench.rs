//! A micro-benchmark harness with a criterion-compatible surface.
//!
//! Each benchmark warms up for `warm_up_time`, then takes `sample_size`
//! timed samples (auto-batching very fast bodies so a sample is long enough
//! to measure), and reports median / min / mean. On [`BenchmarkGroup::finish`]
//! the group's results are written as JSON to `BENCH_<group>.json` so runs
//! can be diffed and regression-checked without any plotting machinery.
//!
//! Environment knobs:
//!
//! * `RAPIDA_BENCH_SMOKE=1` — one sample, one iteration, no warmup: a
//!   compile-and-run smoke pass for CI (used by `scripts/verify.sh`).
//! * `RAPIDA_BENCH_DIR` — directory for the JSON reports (default: the
//!   current working directory).

use std::time::{Duration, Instant};

/// Is the harness in smoke mode (single iteration, no warmup)?
pub fn smoke_mode() -> bool {
    std::env::var("RAPIDA_BENCH_SMOKE").map_or(false, |v| v == "1" || v == "true")
}

/// The top-level harness handle, passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    groups_run: usize,
    benches_run: usize,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            results: Vec::new(),
        }
    }

    /// Print the run summary. Called by `criterion_main!` after all groups.
    pub fn final_report(&self) {
        println!(
            "\nbench harness: {} benchmark(s) in {} group(s){}",
            self.benches_run,
            self.groups_run,
            if smoke_mode() { " [smoke mode]" } else { "" }
        );
    }
}

/// A benchmark identifier: `function/parameter`, like criterion's.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into one id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    samples_ns: Vec<f64>,
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
    iters_per_sample: u64,
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total target measurement duration, split across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = self.make_bencher();
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Run one benchmark with a borrowed input (criterion's shape).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = self.make_bencher();
        f(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    fn make_bencher(&self) -> Bencher {
        let smoke = smoke_mode();
        Bencher {
            sample_size: if smoke { 1 } else { self.sample_size },
            warm_up_time: if smoke { Duration::ZERO } else { self.warm_up_time },
            measurement_time: self.measurement_time,
            smoke,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Run two benchmark bodies as one interleaved pair: timed samples
    /// alternate A, B, A, B, … so a slow machine window (background load,
    /// thermal drift) hits both variants equally instead of biasing
    /// whichever id happened to run second. Use this when the quantity of
    /// interest is the *ratio* between the two ids. Records one result per
    /// id, shaped exactly like two [`Self::bench_with_input`] runs.
    pub fn bench_pair<I: ?Sized, OA, OB>(
        &mut self,
        id_a: BenchmarkId,
        id_b: BenchmarkId,
        input: &I,
        mut fa: impl FnMut(&I) -> OA,
        mut fb: impl FnMut(&I) -> OB,
    ) -> &mut Self {
        if smoke_mode() {
            for (id, elapsed) in [
                (id_a, time_once(|| std::hint::black_box(fa(input)))),
                (id_b, time_once(|| std::hint::black_box(fb(input)))),
            ] {
                self.record_samples(id, vec![elapsed], 1);
            }
            return self;
        }
        let batch_a = self.warmed_batch(|| std::hint::black_box(fa(input)));
        let batch_b = self.warmed_batch(|| std::hint::black_box(fb(input)));
        let mut samples_a = Vec::with_capacity(self.sample_size);
        let mut samples_b = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch_a {
                std::hint::black_box(fa(input));
            }
            samples_a.push(start.elapsed().as_nanos() as f64 / batch_a as f64);
            let start = Instant::now();
            for _ in 0..batch_b {
                std::hint::black_box(fb(input));
            }
            samples_b.push(start.elapsed().as_nanos() as f64 / batch_b as f64);
        }
        self.record_samples(id_a, samples_a, batch_a);
        self.record_samples(id_b, samples_b, batch_b);
        self
    }

    /// Warm one pair member up for half the group warmup budget and derive
    /// its per-sample batch size from the observed per-call cost.
    fn warmed_batch<O>(&self, mut f: impl FnMut() -> O) -> u64 {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time / 2 || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let per_call_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        (target_sample_ns / per_call_ns).clamp(1.0, 1e7) as u64
    }

    fn record(&mut self, id: BenchmarkId, bencher: Bencher) {
        let mut samples = bencher.samples_ns;
        if samples.is_empty() {
            // The bench closure never called iter(); record a zero so the
            // report shows the hole instead of silently dropping the id.
            samples.push(0.0);
        }
        self.record_samples(id, samples, bencher.iters_per_sample);
    }

    fn record_samples(&mut self, id: BenchmarkId, mut samples: Vec<f64>, iters_per_sample: u64) {
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<40} median {:>12}  min {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.name, id.id),
            fmt_ns(median),
            fmt_ns(min),
            samples.len(),
            iters_per_sample,
        );
        self.results.push(BenchResult {
            id: id.id,
            samples_ns: samples,
            median_ns: median,
            min_ns: min,
            mean_ns: mean,
            iters_per_sample,
        });
        self.criterion.benches_run += 1;
    }

    /// Finish the group: write `BENCH_<group>.json`.
    pub fn finish(self) {
        let dir = std::env::var("RAPIDA_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
            .collect();
        let path = format!("{dir}/BENCH_{sanitized}.json");
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str(&format!("  \"group\": {},\n", json_str(&self.name)));
        json.push_str(&format!("  \"smoke\": {},\n", smoke_mode()));
        json.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            json.push_str("    {");
            json.push_str(&format!("\"id\": {}, ", json_str(&r.id)));
            json.push_str(&format!("\"median_ns\": {}, ", json_num(r.median_ns)));
            json.push_str(&format!("\"min_ns\": {}, ", json_num(r.min_ns)));
            json.push_str(&format!("\"mean_ns\": {}, ", json_num(r.mean_ns)));
            json.push_str(&format!("\"iters_per_sample\": {}, ", r.iters_per_sample));
            json.push_str(&format!(
                "\"samples_ns\": [{}]",
                r.samples_ns
                    .iter()
                    .map(|s| json_num(*s))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            json.push_str(if i + 1 == self.results.len() { "}\n" } else { "},\n" });
        }
        json.push_str("  ]\n}\n");
        let _ = std::fs::create_dir_all(&dir);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        }
        self.criterion.groups_run += 1;
    }
}

fn time_once<O>(f: impl FnOnce() -> O) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos() as f64
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke: bool,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`: warm up, pick a batch size targeting
    /// `measurement_time / sample_size` per sample, then record samples of
    /// mean per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples_ns = vec![start.elapsed().as_nanos() as f64];
            self.iters_per_sample = 1;
            return;
        }

        // Warmup, measuring per-call cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_call_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let target_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = (target_sample_ns / per_call_ns).clamp(1.0, 1e7) as u64;
        self.iters_per_sample = batch;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.samples_ns = samples;
    }

    /// Time `f` with a caller-measured clock — criterion's `iter_custom`
    /// shape. `f` receives an iteration count and returns the total
    /// [`Duration`] those iterations took by whatever clock the caller
    /// trusts (e.g. a busy-time makespan rather than wall time, on machines
    /// where wall-clock parallel speedup is meaningless). Samples record
    /// mean per-iteration nanoseconds, exactly like [`Self::iter`].
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if self.smoke {
            self.samples_ns = vec![f(1).as_nanos() as f64];
            self.iters_per_sample = 1;
            return;
        }

        // Warmup, measuring per-call cost by wall clock to pick a batch
        // that fills the per-sample time budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f(1));
            warm_iters += 1;
        }
        let per_call_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        let target_sample_ns =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = (target_sample_ns / per_call_ns).clamp(1.0, 1e7) as u64;
        self.iters_per_sample = batch;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let total = f(batch);
            samples.push(total.as_nanos() as f64 / batch as f64);
        }
        self.samples_ns = samples;
    }
}

/// Bundle bench functions into a group runner — criterion's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $( $group(&mut c); )+
            c.final_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("testgroup_smoketest");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(g.results.len(), 1);
        assert!(!g.results[0].samples_ns.is_empty());
        assert!(g.results[0].min_ns <= g.results[0].median_ns);
        // Don't write a JSON file from unit tests: drop without finish().
    }

    #[test]
    fn bench_pair_records_both_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("testgroup_pair");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_pair(
            BenchmarkId::new("a", "x"),
            BenchmarkId::new("b", "x"),
            &7u64,
            |n| n + 1,
            |n| n + 2,
        );
        assert_eq!(g.results.len(), 2);
        assert_eq!(g.results[0].id, "a/x");
        assert_eq!(g.results[1].id, "b/x");
        for r in &g.results {
            assert_eq!(r.samples_ns.len(), 3);
            assert!(r.min_ns <= r.median_ns);
        }
        // Don't write a JSON file from unit tests: drop without finish().
    }

    #[test]
    fn iter_custom_uses_the_callers_clock() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("testgroup_custom");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.bench_function("fixed", |b| {
            // Report exactly 1 µs per iteration regardless of wall time.
            b.iter_custom(|iters| Duration::from_micros(iters))
        });
        assert_eq!(g.results.len(), 1);
        for &s in &g.results[0].samples_ns {
            assert!((s - 1000.0).abs() < 1.0, "sample {s} should be ~1000 ns");
        }
        // Don't write a JSON file from unit tests: drop without finish().
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_num(f64::NAN), "null");
    }
}
