//! String strategies from a small regex subset, mirroring
//! `proptest::string::string_regex`.
//!
//! Supported syntax — exactly what the workspace's property tests use, plus
//! the obvious neighbors:
//!
//! * literals and escapes (`\.`, `\\`, `\n`, `\t`, `\r`)
//! * character classes `[a-z0-9_-]` with ranges and escapes (no negation)
//! * groups `( … )` and top-level/group alternation `a|b`
//! * quantifiers `{m}`, `{m,n}`, `{m,}`, `?`, `*`, `+`
//! * `\PC` / `\p{…}`-style shorthand for "any printable char" and the
//!   `\d` / `\w` / `\s` classes
//!
//! Generation is uniform-ish and draws through [`Gen`], so regex-generated
//! strings shrink (shorter repetitions, earlier alternatives, lower
//! codepoints) like any other strategy.

use super::{Gen, Strategy};

/// Upper repetition bound for the unbounded quantifiers `*`, `+`, `{m,}`.
const UNBOUNDED_MAX_EXTRA: u32 = 8;

/// A parse error from [`string_regex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(String);

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[derive(Debug, Clone)]
enum Node {
    /// One alternative chosen uniformly.
    Alt(Vec<Node>),
    /// Atoms in sequence, each with a repetition range.
    Seq(Vec<(Node, u32, u32)>),
    /// A set of inclusive codepoint ranges.
    Class(Vec<(u32, u32)>),
    /// A literal character.
    Lit(char),
}

/// Compile `pattern` into a `String` strategy. The `Result` mirrors
/// proptest's signature; tests typically `.unwrap()`.
pub fn string_regex(pattern: &str) -> Result<StringRegex, RegexError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let node = p.parse_alt()?;
    if p.pos != p.chars.len() {
        return Err(RegexError(format!(
            "unexpected `{}` at offset {}",
            p.chars[p.pos], p.pos
        )));
    }
    Ok(StringRegex { node })
}

/// The strategy returned by [`string_regex`].
#[derive(Debug, Clone)]
pub struct StringRegex {
    node: Node,
}

impl Strategy for StringRegex {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        let mut out = String::new();
        emit(&self.node, g, &mut out);
        out
    }
}

fn emit(node: &Node, g: &mut Gen, out: &mut String) {
    match node {
        Node::Alt(arms) => {
            let idx = g.below(arms.len() as u64) as usize;
            emit(&arms[idx], g, out);
        }
        Node::Seq(atoms) => {
            for (atom, lo, hi) in atoms {
                let n = lo + g.below(u64::from(hi - lo + 1)) as u32;
                for _ in 0..n {
                    emit(atom, g, out);
                }
            }
        }
        Node::Class(ranges) => {
            let idx = g.below(ranges.len() as u64) as usize;
            let (lo, hi) = ranges[idx];
            let cp = lo + g.below(u64::from(hi - lo + 1)) as u32;
            // Ranges are validated at parse time to avoid surrogates.
            out.push(char::from_u32(cp).unwrap_or('?'));
        }
        Node::Lit(c) => out.push(*c),
    }
}

/// Printable characters: ASCII, Latin-1/Latin Extended-A, some Greek, and a
/// CJK slice — the stand-in for `\PC` ("not a control/unassigned char").
fn printable_ranges() -> Vec<(u32, u32)> {
    vec![
        (0x20, 0x7e),
        (0xa0, 0xff),
        (0x100, 0x17f),
        (0x391, 0x3c9),
        (0x4e00, 0x4eff),
    ]
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, msg: &str) -> RegexError {
        RegexError(format!("{msg} at offset {}", self.pos))
    }

    fn parse_alt(&mut self) -> Result<Node, RegexError> {
        let mut arms = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            arms.push(self.parse_seq()?);
        }
        if arms.len() == 1 {
            Ok(arms.pop().unwrap())
        } else {
            Ok(Node::Alt(arms))
        }
    }

    fn parse_seq(&mut self) -> Result<Node, RegexError> {
        let mut atoms = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let (lo, hi) = self.parse_quantifier()?;
            atoms.push((atom, lo, hi));
        }
        Ok(Node::Seq(atoms))
    }

    fn parse_atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(false),
            Some('.') => Ok(Node::Class(printable_ranges())),
            Some(c @ ('{' | '}' | '*' | '+' | '?')) => {
                Err(RegexError(format!("dangling quantifier `{c}`")))
            }
            Some(c) => Ok(Node::Lit(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    /// An escape sequence. Inside a class, `Lit` results are interpreted as
    /// single chars by the caller.
    fn parse_escape(&mut self, in_class: bool) -> Result<Node, RegexError> {
        let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
        match c {
            'n' => Ok(Node::Lit('\n')),
            't' => Ok(Node::Lit('\t')),
            'r' => Ok(Node::Lit('\r')),
            '0' => Ok(Node::Lit('\0')),
            'd' => Ok(Node::Class(vec![(0x30, 0x39)])),
            'w' => Ok(Node::Class(vec![
                (0x30, 0x39),
                (0x41, 0x5a),
                (0x5f, 0x5f),
                (0x61, 0x7a),
            ])),
            's' => Ok(Node::Class(vec![(0x20, 0x20), (0x09, 0x0a), (0x0d, 0x0d)])),
            'P' | 'p' => {
                // Unicode category shorthand. We only distinguish "printable"
                // (`\PC`, `\p{L}`, …) — the tests use it as "any reasonable
                // char", and that is what we generate.
                if in_class {
                    return Err(self.err("\\P inside a class is unsupported"));
                }
                match self.bump() {
                    Some('{') => {
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                        }
                        Ok(Node::Class(printable_ranges()))
                    }
                    Some(_) => Ok(Node::Class(printable_ranges())),
                    None => Err(self.err("dangling \\P")),
                }
            }
            // Escaped metacharacter or punctuation: literal.
            c => Ok(Node::Lit(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        if self.peek() == Some('^') {
            return Err(self.err("negated classes are unsupported"));
        }
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = self.bump().ok_or_else(|| self.err("unclosed class"))?;
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p as u32, p as u32));
                    }
                    if ranges.is_empty() {
                        return Err(self.err("empty class"));
                    }
                    return Ok(Node::Class(ranges));
                }
                '\\' => {
                    let node = self.parse_escape(true)?;
                    if let Some(p) = pending.take() {
                        ranges.push((p as u32, p as u32));
                    }
                    match node {
                        Node::Lit(l) => pending = Some(l),
                        Node::Class(mut rs) => ranges.append(&mut rs),
                        _ => return Err(self.err("unsupported class escape")),
                    }
                }
                '-' => {
                    // A range if we have a pending start and a following end;
                    // otherwise a literal '-'.
                    match (pending.take(), self.peek()) {
                        (Some(start), Some(end)) if end != ']' => {
                            self.bump();
                            let end = if end == '\\' {
                                match self.parse_escape(true)? {
                                    Node::Lit(l) => l,
                                    _ => return Err(self.err("bad range end")),
                                }
                            } else {
                                end
                            };
                            let (lo, hi) = (start as u32, end as u32);
                            if lo > hi {
                                return Err(self.err("inverted class range"));
                            }
                            // Reject ranges spanning the surrogate gap.
                            if lo < 0xd800 && hi > 0xdfff {
                                return Err(self.err("range spans surrogates"));
                            }
                            ranges.push((lo, hi));
                        }
                        (start, _) => {
                            if let Some(s) = start {
                                ranges.push((s as u32, s as u32));
                            }
                            pending = Some('-');
                        }
                    }
                }
                c => {
                    if let Some(p) = pending.take() {
                        ranges.push((p as u32, p as u32));
                    }
                    pending = Some(c);
                }
            }
        }
    }

    /// `{m}`, `{m,n}`, `{m,}`, `?`, `*`, `+`, or nothing (exactly once).
    fn parse_quantifier(&mut self) -> Result<(u32, u32), RegexError> {
        match self.peek() {
            Some('?') => {
                self.bump();
                Ok((0, 1))
            }
            Some('*') => {
                self.bump();
                Ok((0, UNBOUNDED_MAX_EXTRA))
            }
            Some('+') => {
                self.bump();
                Ok((1, 1 + UNBOUNDED_MAX_EXTRA))
            }
            Some('{') => {
                self.bump();
                let lo = self.parse_number()?;
                match self.bump() {
                    Some('}') => Ok((lo, lo)),
                    Some(',') => {
                        if self.peek() == Some('}') {
                            self.bump();
                            return Ok((lo, lo + UNBOUNDED_MAX_EXTRA));
                        }
                        let hi = self.parse_number()?;
                        if self.bump() != Some('}') {
                            return Err(self.err("unclosed quantifier"));
                        }
                        if hi < lo {
                            return Err(self.err("inverted quantifier"));
                        }
                        Ok((lo, hi))
                    }
                    _ => Err(self.err("malformed quantifier")),
                }
            }
            _ => Ok((1, 1)),
        }
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        digits
            .parse()
            .map_err(|_| self.err("expected a number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_one(pattern: &str, seed: u64) -> String {
        let s = string_regex(pattern).unwrap();
        s.generate(&mut Gen::live(seed))
    }

    #[test]
    fn literal_patterns_emit_verbatim() {
        assert_eq!(gen_one("abc", 1), "abc");
        assert_eq!(gen_one("http://x\\.y/z", 2), "http://x.y/z");
    }

    #[test]
    fn class_and_quantifier_respect_bounds() {
        for seed in 0..50 {
            let s = gen_one("[a-d]{1,3}", seed);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn alternation_and_optional_group() {
        for seed in 0..50 {
            let s = gen_one("[a-z]{2}(-[A-Z]{2})?", seed);
            assert!(s.len() == 2 || s.len() == 5, "{s:?}");
            if s.len() == 5 {
                assert_eq!(s.as_bytes()[2], b'-');
            }
        }
    }

    #[test]
    fn printable_category_generates_no_controls() {
        for seed in 0..20 {
            let s = gen_one("\\PC{0,200}", seed);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn escapes_in_classes() {
        for seed in 0..30 {
            let s = gen_one("[ -~\n\t\"\\\\]{0,40}", seed);
            assert!(s.chars().all(|c| {
                (' '..='~').contains(&c) || c == '\n' || c == '\t' || c == '\\'
            }), "{s:?}");
        }
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(string_regex("[z-a]").is_err());
        assert!(string_regex("(unclosed").is_err());
        assert!(string_regex("a{3,1}").is_err());
        assert!(string_regex("[^ab]").is_err());
    }
}
