//! A lightweight property-testing harness with a `proptest!`-compatible
//! macro shape.
//!
//! ## Model
//!
//! A [`Strategy`] draws a value from a [`Gen`]. `Gen` records every raw
//! `u64` it hands out on a *tape*; shrinking operates on that tape
//! (truncate, zero, halve, decrement entries) and regenerates the value
//! from the mutated tape. Because every combinator draws through `Gen`,
//! shrinking works uniformly through `prop_map`, `prop_oneof!`, collections
//! and string-regex strategies without per-type shrinkers: smaller draws
//! produce structurally smaller values (a zeroed length draw empties a
//! vector, a zeroed range draw lands on the range start).
//!
//! ## Determinism
//!
//! Every test runs from a fixed default seed; each case derives its own
//! SplitMix64 stream, so case `i` is reproducible in isolation. On failure
//! the harness greedily shrinks, then panics with the seed, the case index
//! and the minimal failing input. `RAPIDA_PROP_CASES` and
//! `RAPIDA_PROP_SEED` override the case count and seed.

use crate::rng::{splitmix64, StdRng};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// Gen: the recording/replaying random source strategies draw from.
// ---------------------------------------------------------------------------

/// The random source handed to [`Strategy::generate`].
///
/// In *live* mode draws come from the PRNG; in *replay* mode they come from
/// a (possibly mutated) tape, with zeros once the tape is exhausted. All
/// draws are recorded, so the canonical tape of a generation is always
/// available afterwards.
pub struct Gen<'a> {
    live: StdRng,
    replay: Option<&'a [u64]>,
    pos: usize,
    tape: Vec<u64>,
}

impl<'a> Gen<'a> {
    /// A live generator seeded from `seed`.
    pub fn live(seed: u64) -> Self {
        Gen {
            live: StdRng::seed_from_u64(seed),
            replay: None,
            pos: 0,
            tape: Vec::new(),
        }
    }

    /// A replaying generator over a fixed tape (zeros past the end).
    pub fn replay(tape: &'a [u64]) -> Self {
        Gen {
            live: StdRng::seed_from_u64(0),
            replay: Some(tape),
            pos: 0,
            tape: Vec::new(),
        }
    }

    /// The raw draws consumed by the last generation.
    pub fn into_tape(self) -> Vec<u64> {
        self.tape
    }

    /// Next raw 64 bits (recorded).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let v = match self.replay {
            Some(t) => t.get(self.pos).copied().unwrap_or(0),
            None => self.live.next_u64(),
        };
        self.pos += 1;
        self.tape.push(v);
        v
    }

    /// Uniform-ish value in `[0, n)`. Uses a plain modulo so that a zeroed
    /// tape entry maps to the smallest value — the shrinker relies on this
    /// (rejection sampling would consume a data-dependent number of draws
    /// and desynchronize replayed tapes). A constant choice (`n <= 1`)
    /// consumes no entropy at all, keeping tape positions stable.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Uniform usize in a half-open range.
    #[inline]
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy and Arbitrary.
// ---------------------------------------------------------------------------

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draw one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Map the produced value through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V: fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        (**self).generate(g)
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Arbitrary values of `T` — mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                // Bias toward small and edge values: selector 0 (the shrunk
                // state) is the "small" branch, so zeroed tapes give 0.
                match g.below(4) {
                    0 => (g.below(32)) as $t,
                    1 => [0 as $t, 1, 2, <$t>::MAX, <$t>::MAX - 1]
                        [g.below(5) as usize],
                    _ => g.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                match g.below(4) {
                    0 => (g.below(32)) as $t - 16,
                    1 => [0 as $t, 1, -1, <$t>::MAX, <$t>::MIN]
                        [g.below(5) as usize],
                    _ => g.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(g: &mut Gen) -> Self {
        match g.below(4) {
            0 => [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::EPSILON,
            ][g.below(8) as usize],
            1 => (g.next_u64() as i64 as f64) / 1024.0,
            _ => f64::from_bits(g.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(g: &mut Gen) -> Self {
        f64::arbitrary(g) as f32
    }
}

// Integer and float ranges are strategies, shrinking toward the start.
macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + g.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return g.next_u64() as $t;
                }
                (lo as i128 + g.below(span + 1) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + g.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + g.unit_f64() * (hi - lo)
    }
}

// A string literal is a regex strategy, like proptest's `&str` impl.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        match string::string_regex(self) {
            Ok(s) => s.generate(g),
            Err(e) => panic!("invalid regex strategy {self:?}: {e}"),
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, g: &mut Gen) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// A uniform choice between same-valued strategies — built by
/// [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from boxed arms. Panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, g: &mut Gen) -> V {
        let idx = g.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(g)
    }
}

/// Collection strategies (`vec`, `btree_set`), mirroring
/// `proptest::collection`.
pub mod collection {
    use super::{Gen, Strategy};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let len = g.usize_in(self.size.clone());
            (0..len).map(|_| self.element.generate(g)).collect()
        }
    }

    /// `BTreeSet<T>` aiming for a size drawn from `size` (duplicates from
    /// the element strategy may produce fewer, as in proptest).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, g: &mut Gen) -> BTreeSet<S::Value> {
            let target = g.usize_in(self.size.clone());
            let mut set = BTreeSet::new();
            // Bounded attempts: a narrow element domain may not have
            // `target` distinct values.
            for _ in 0..target * 2 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(g));
            }
            set
        }
    }
}

/// `Option<T>` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Gen, Strategy};

    /// `None` a quarter of the time, `Some` otherwise (shrinks to `None`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, g: &mut Gen) -> Option<S::Value> {
            if g.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(g))
            }
        }
    }
}

pub mod string;

// ---------------------------------------------------------------------------
// Config and runner.
// ---------------------------------------------------------------------------

/// Runner configuration. `..Config::default()` picks up the environment
/// overrides, so per-test overrides compose with them the way proptest's
/// `ProptestConfig` does.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run (`RAPIDA_PROP_CASES` overrides the default).
    pub cases: u32,
    /// Budget for shrink attempts after a failure.
    pub max_shrink_iters: u32,
    /// Base seed; each case derives its own stream from it
    /// (`RAPIDA_PROP_SEED` overrides the default, decimal or `0x…` hex).
    pub seed: u64,
}

/// The fixed default seed: tests reproduce bit-for-bit across runs and
/// machines unless `RAPIDA_PROP_SEED` says otherwise.
pub const DEFAULT_SEED: u64 = 0x5eed_cafe_f00d_0001;

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("RAPIDA_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("RAPIDA_PROP_SEED")
            .ok()
            .and_then(|v| parse_u64(&v))
            .unwrap_or(DEFAULT_SEED);
        Config {
            cases,
            max_shrink_iters: 2048,
            seed,
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn call<V, T: Fn(V) -> Result<(), String>>(test: &T, value: V) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Run `test` over `config.cases` generated inputs; on failure, shrink
/// greedily and panic with a reproducible report.
///
/// This is the target of the [`proptest!`] macro expansion, not usually
/// called by hand.
pub fn run<S, T>(name: &str, config: Config, strategy: &S, test: T)
where
    S: Strategy,
    T: Fn(S::Value) -> Result<(), String>,
{
    let mut stream = config.seed;
    for case in 0..config.cases {
        let case_seed = splitmix64(&mut stream);
        let mut g = Gen::live(case_seed);
        let value = strategy.generate(&mut g);
        if let Err(msg) = call(&test, value) {
            let tape = g.into_tape();
            let (tape, msg) = shrink(strategy, &test, tape, msg, config.max_shrink_iters);
            let minimal = strategy.generate(&mut Gen::replay(&tape));
            panic!(
                "\n[{name}] property failed at case {case}/{total}\n\
                 seed: {seed:#018x}  (rerun: RAPIDA_PROP_SEED={seed:#x} RAPIDA_PROP_CASES={total})\n\
                 minimal failing input: {minimal:#?}\n\
                 error: {msg}\n",
                total = config.cases,
                seed = config.seed,
            );
        }
    }
}

/// Greedy tape shrinking: repeatedly try simpler tapes (shorter, then
/// element-wise zero/halve/decrement), adopting the first candidate that
/// still fails, until a full pass yields no progress or the budget runs out.
fn shrink<S, T>(
    strategy: &S,
    test: &T,
    tape: Vec<u64>,
    msg: String,
    budget: u32,
) -> (Vec<u64>, String)
where
    S: Strategy,
    T: Fn(S::Value) -> Result<(), String>,
{
    // Silence the default panic hook while probing candidates: a shrink run
    // can provoke hundreds of expected panics.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut best = tape;
    let mut best_msg = msg;
    let mut iters = 0u32;
    'progress: loop {
        for cand in candidates(&best) {
            if iters >= budget {
                break 'progress;
            }
            iters += 1;
            let mut g = Gen::replay(&cand);
            let value = strategy.generate(&mut g);
            if let Err(m) = call(test, value) {
                // Keep the tape as actually consumed — it may be shorter or
                // longer than the candidate (zero-padded past its end). Only
                // adopt strict progress: a truncated tape re-inflates to its
                // consumed length, so without this check the same truncation
                // would be re-adopted every round until the budget is gone.
                let consumed = g.into_tape();
                if simpler(&consumed, &best) {
                    best = consumed;
                    best_msg = m;
                    continue 'progress;
                }
            }
        }
        break;
    }

    std::panic::set_hook(saved_hook);
    (best, best_msg)
}

/// Tape order for shrinking: shorter wins, then lexicographically smaller —
/// the same order Hypothesis uses, which guarantees shrink termination.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

/// Candidate simpler tapes for one shrink round, simplest-first.
fn candidates(tape: &[u64]) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let n = tape.len();
    if n == 0 {
        return out;
    }
    // Global truncations first: they remove whole substructures at once.
    for cut in [0, n / 4, n / 2, 3 * n / 4, n - 1] {
        if cut < n {
            out.push(tape[..cut].to_vec());
        }
    }
    // Element-wise simplifications, earliest draws first (sizes and
    // selectors tend to come first and dominate structure).
    let scan = n.min(512);
    for i in 0..scan {
        if tape[i] != 0 {
            let mut t = tape.to_vec();
            t[i] = 0;
            out.push(t);
        }
    }
    for i in 0..scan {
        if tape[i] > 1 {
            let mut t = tape.to_vec();
            t[i] /= 2;
            out.push(t);
        }
    }
    for i in 0..scan {
        if tape[i] != 0 {
            let mut t = tape.to_vec();
            t[i] -= 1;
            out.push(t);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Declare property tests — same shape as `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///
///     #[test]
///     fn roundtrip(v in any::<u64>(), pad in 0usize..16) {
///         prop_assert_eq!(decode(&encode(v, pad)), v);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::prop::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prop::Config = $cfg;
                let strategy = ( $($strat,)+ );
                $crate::prop::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    config,
                    &strategy,
                    |( $($pat,)+ )| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Property assertion: on failure, reports and triggers shrinking instead
/// of tearing the whole process state down mid-shrink.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![
            $( $crate::prop::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_u64_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("123"), Some(123));
        assert_eq!(parse_u64(" 0x1f "), Some(31));
        assert_eq!(parse_u64("0XFF"), Some(255));
        assert_eq!(parse_u64("nope"), None);
    }

    #[test]
    fn env_overrides_config() {
        // This test owns both variables; nothing else in this binary reads
        // them, so the set/remove pair is race-free in practice.
        std::env::set_var("RAPIDA_PROP_CASES", "9");
        std::env::set_var("RAPIDA_PROP_SEED", "0xabc");
        let c = Config::default();
        std::env::remove_var("RAPIDA_PROP_CASES");
        std::env::remove_var("RAPIDA_PROP_SEED");
        assert_eq!(c.cases, 9);
        assert_eq!(c.seed, 0xabc);
        let d = Config::default();
        assert_eq!(d.cases, 64);
        assert_eq!(d.seed, DEFAULT_SEED);
    }

    #[test]
    fn simpler_orders_tapes_shortlex() {
        assert!(simpler(&[5, 5], &[1, 1, 1]));
        assert!(simpler(&[0, 9], &[1, 0]));
        assert!(!simpler(&[2, 0], &[2, 0]));
        assert!(!simpler(&[3], &[2]));
    }

    #[test]
    fn candidates_are_all_simpler() {
        let tape = vec![7u64, 0, 300];
        for c in candidates(&tape) {
            assert!(simpler(&c, &tape), "{c:?} not simpler than {tape:?}");
        }
        assert!(candidates(&[]).is_empty());
    }
}
