//! Seedable, deterministic PRNG: SplitMix64 for seeding and stream
//! derivation, xoshiro256** for the main generator.
//!
//! The surface deliberately mirrors the subset of `rand` the workspace used
//! (`StdRng::seed_from_u64`, `gen_range` over ranges, `gen_bool`) so the
//! data generators ported over with only their `use` lines changing. Unlike
//! `rand::StdRng`, the algorithm here is pinned forever: generated datasets
//! are part of the test baselines and must never drift across toolchains.

/// SplitMix64 step: the standard 64-bit mixer (Steele, Lea & Flood 2014).
///
/// Used to expand a `u64` seed into xoshiro state and to derive independent
/// per-case streams in the property harness.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** — small, fast, and statistically strong; state seeded via
/// SplitMix64 so that any `u64` (including 0) is a valid seed.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed from a single `u64` by expanding it through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace's standard RNG. The name matches `rand::rngs::StdRng` so
/// generator code reads idiomatically; the algorithm is xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    inner: Xoshiro256,
}

impl StdRng {
    /// Seed deterministically from a `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            inner: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in the given range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like `rand::Rng::gen_range`.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        // 53 uniform mantissa bits, same construction as `unit_f64`.
        self.unit_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, n)` via Lemire-style rejection.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// Ranges a uniform sample can be drawn from — the workspace's analogue of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..4 should appear");
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} / 10000");
    }

    #[test]
    fn stream_is_pinned_forever() {
        // The exact output sequence is part of the dataset baselines: if this
        // test fails, every generated-graph fixture in the repo changes.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }
}
