//! Deterministic chaos-test harness: sweep fault seeds × worker counts and
//! assert every run reproduces the fault-free golden output.
//!
//! The harness is deliberately generic — it knows nothing about MapReduce.
//! A chaos test supplies one closure mapping a [`Scenario`] (an optional
//! fault seed plus a worker count) to any `PartialEq + Debug` value: the
//! output bytes of a workflow, a metrics signature, a whole result relation.
//! [`sweep`] runs the fault-free scenario first as the golden reference,
//! then every other scenario in the sweep, and fails on the first
//! divergence with a message naming the offending scenario.
//!
//! Sweep width is environment-tunable: `RAPIDA_CHAOS_SEEDS=<n>` selects how
//! many fault seeds to sweep (default 3). Seeds are derived from a fixed
//! base via SplitMix64 so the sweep itself is reproducible — the same `n`
//! always tests the same seeds.

use crate::rng::splitmix64;

/// One chaos scenario: which fault seed to inject (or none) at which
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Seed for the run's fault plan; `None` runs fault-free.
    pub fault_seed: Option<u64>,
    /// Worker thread count for the run.
    pub workers: usize,
}

impl Scenario {
    /// Human-readable label used in failure messages.
    pub fn label(&self) -> String {
        match self.fault_seed {
            Some(s) => format!("faults(seed={s:#x}) workers={}", self.workers),
            None => format!("fault-free workers={}", self.workers),
        }
    }
}

/// The sweep grid: fault seeds × worker counts (plus fault-free runs at
/// every worker count).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault seeds to sweep.
    pub seeds: Vec<u64>,
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
}

impl ChaosConfig {
    /// `n` derived fault seeds against the default worker grid `{1, 2, 8}`.
    pub fn with_seed_count(n: usize) -> Self {
        let mut state = 0xC4A0_5EED_0DDC_0FFE_u64;
        ChaosConfig {
            seeds: (0..n).map(|_| splitmix64(&mut state)).collect(),
            workers: vec![1, 2, 8],
        }
    }

    /// Read the sweep width from `RAPIDA_CHAOS_SEEDS` (default 3).
    pub fn from_env() -> Self {
        let n = std::env::var("RAPIDA_CHAOS_SEEDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(3);
        Self::with_seed_count(n)
    }

    /// Every scenario in the grid, golden reference first: fault-free at
    /// each worker count, then each seed at each worker count.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &w in &self.workers {
            out.push(Scenario {
                fault_seed: None,
                workers: w,
            });
        }
        for &seed in &self.seeds {
            for &w in &self.workers {
                out.push(Scenario {
                    fault_seed: Some(seed),
                    workers: w,
                });
            }
        }
        out
    }
}

/// Run `run` over the whole sweep and assert every scenario reproduces the
/// fault-free golden value (taken at the grid's first worker count).
///
/// Panics with the scenario label on the first divergence.
pub fn sweep<T, F>(name: &str, cfg: &ChaosConfig, mut run: F)
where
    T: PartialEq + std::fmt::Debug,
    F: FnMut(&Scenario) -> T,
{
    let scenarios = cfg.scenarios();
    assert!(
        !scenarios.is_empty(),
        "{name}: chaos sweep needs at least one worker count"
    );
    let golden_scenario = scenarios[0];
    let golden = run(&golden_scenario);
    for s in &scenarios[1..] {
        let got = run(s);
        assert!(
            got == golden,
            "{name}: [{}] diverged from golden [{}]\n  golden: {:?}\n  got:    {:?}",
            s.label(),
            golden_scenario.label(),
            golden,
            got,
        );
    }
}

/// Declare deterministic chaos tests: each `fn` body receives a
/// [`Scenario`] and returns the run's observable value; the generated
/// `#[test]` sweeps it via [`sweep`] under [`ChaosConfig::from_env`].
///
/// ```ignore
/// chaos! {
///     fn my_workflow(scenario) {
///         run_workflow(scenario.fault_seed, scenario.workers) // -> impl PartialEq + Debug
///     }
/// }
/// ```
#[macro_export]
macro_rules! chaos {
    ($(#[$attr:meta])* fn $name:ident($scenario:ident) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let cfg = $crate::chaos::ChaosConfig::from_env();
            $crate::chaos::sweep(
                stringify!($name),
                &cfg,
                |$scenario: &$crate::chaos::Scenario| $body,
            );
        }
        $crate::chaos! { $($rest)* }
    };
    () => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_golden_first() {
        let cfg = ChaosConfig::with_seed_count(2);
        let scenarios = cfg.scenarios();
        assert_eq!(scenarios.len(), 3 + 2 * 3);
        assert_eq!(
            scenarios[0],
            Scenario {
                fault_seed: None,
                workers: 1
            }
        );
        assert!(scenarios[..3].iter().all(|s| s.fault_seed.is_none()));
        assert!(scenarios[3..].iter().all(|s| s.fault_seed.is_some()));
    }

    #[test]
    fn seed_derivation_is_pinned() {
        // Same count → same seeds, and wider sweeps extend narrower ones.
        let a = ChaosConfig::with_seed_count(2);
        let b = ChaosConfig::with_seed_count(4);
        assert_eq!(a.seeds, b.seeds[..2]);
        assert_eq!(a.seeds, ChaosConfig::with_seed_count(2).seeds);
    }

    #[test]
    fn sweep_passes_on_agreement() {
        let cfg = ChaosConfig::with_seed_count(1);
        let mut calls = 0;
        sweep("agree", &cfg, |_s| {
            calls += 1;
            42u64
        });
        assert_eq!(calls, cfg.scenarios().len());
    }

    #[test]
    #[should_panic(expected = "diverged from golden")]
    fn sweep_fails_on_divergence() {
        let cfg = ChaosConfig::with_seed_count(1);
        sweep("diverge", &cfg, |s| s.fault_seed.map_or(0u64, |x| x));
    }

    chaos! {
        /// The macro itself, exercised end to end on a trivial body.
        fn macro_generates_a_sweeping_test(scenario) {
            // Scenario-independent value: always agrees with golden.
            let _ = scenario.workers;
            "ok"
        }
    }
}
