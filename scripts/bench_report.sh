#!/usr/bin/env bash
# Full benchmark report: run the shuffle microbench, the NTGA operator
# microbenches, and the Fig. 8 query benches with real measurement settings,
# writing one BENCH_<group>.json per group into the repo root (override the
# destination with RAPIDA_BENCH_DIR).
#
# BENCH_mapred.json is the shuffle data path's recorded baseline: it holds
# the legacy pair-sort shuffle and the arena run-merge shuffle over the same
# 1M-record workload, and the committed copy must show the arena path at
# least 2x faster (checked below).
set -euo pipefail
cd "$(dirname "$0")/.."

# Cargo runs bench binaries with cwd = the *package* directory, so a relative
# RAPIDA_BENCH_DIR would land under crates/bench/ — force it absolute.
DEST="${RAPIDA_BENCH_DIR:-$(pwd)}"
case "$DEST" in /*) ;; *) DEST="$(pwd)/$DEST" ;; esac
mkdir -p "$DEST"
export RAPIDA_BENCH_DIR="$DEST"

echo "==> shuffle data-path bench (writes BENCH_mapred.json)"
cargo bench --offline -p rapida-bench --bench shuffle

echo "==> operator microbenches"
cargo bench --offline -p rapida-bench --bench operators

echo "==> Fig. 8 query benches"
cargo bench --offline -p rapida-bench --bench fig8a_bsbm
cargo bench --offline -p rapida-bench --bench fig8b_bsbm
cargo bench --offline -p rapida-bench --bench fig8c_chem

echo "==> checking BENCH_mapred.json"
python3 - "$DEST/BENCH_mapred.json" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)
by_id = {b["id"]: b for b in report["benchmarks"]}
legacy = next(v for k, v in by_id.items() if k.startswith("shuffle_legacy_pairs/"))
arena = next(v for k, v in by_id.items() if k.startswith("shuffle_arena_merge/"))
ratio = legacy["median_ns"] / arena["median_ns"]
print(f"  legacy median: {legacy['median_ns'] / 1e6:.1f} ms")
print(f"  arena  median: {arena['median_ns'] / 1e6:.1f} ms")
print(f"  speedup: {ratio:.2f}x")
if not report.get("smoke") and ratio < 2.0:
    sys.exit(f"FAIL: arena shuffle speedup {ratio:.2f}x is below the 2x floor")
EOF

echo "==> bench report OK ($DEST)"
