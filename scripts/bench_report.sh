#!/usr/bin/env bash
# Benchmark report runner. Usage:
#
#   scripts/bench_report.sh [mapred|query|scale|plan|extvp|recover|serve|all]
#
# Runs the requested bench group(s) with real measurement settings and
# validates the resulting BENCH_<group>.json in the repo root (override the
# destination with RAPIDA_BENCH_DIR). Default: all groups.
#
# Recorded baselines and their floors (checked below, skipped in smoke mode):
#
#   BENCH_mapred.json — legacy pair-sort shuffle vs arena run-merge shuffle
#     over the same 1M-record workload; the arena path must be >= 2x faster.
#   BENCH_query.json  — Fig. 8 MG queries on RAPIDAnalytics, zero-copy view
#     operators vs the owned-decode path; the view path must be >= 1.3x
#     faster at the median across queries.
#   BENCH_scale.json  — 1M-record shuffle at 1/2/4/8 workers, measured as
#     busy-time makespan (busiest worker's CPU time per phase, so the floor
#     holds even on a 1-core container); 4 workers must be >= 2x faster
#     than 1 worker.
#   BENCH_plan.json   — cost-based enumerator vs fixed plans on MG1-MG4
#     (deterministic simulated model seconds). Floors: per family the chosen
#     plan is never worse than either fixed plan, and at least one MG query
#     has a chosen plan >= 1.1x faster than the fixed Hive-MQO baseline.
#   BENCH_extvp.json  — ExtVP semi-join reductions vs full VP scans on
#     MG1-MG4 + MG6 per engine family (deterministic simulated model
#     seconds). Floors: ExtVP never worse on any (query, family) pair, and
#     at least one MG pair >= 1.2x faster than the full-scan baseline.
#   BENCH_recover.json — checkpoint-resume vs full-restart recovery after
#     a late-job loss on MG1/HiveNaive (deterministic recomputed bytes,
#     1 ns/byte). Floor: full restart must recompute >= 2x the bytes
#     checkpoint resume does.
#   BENCH_serve.json  — batched-MQO serving + scan cache vs one-query-at-a-
#     time at 10/100/1000 simulated clients (deterministic simulated QPS).
#     Floors, checked even in smoke mode: batched beats serial at every
#     scale, and by >= 1.5x at 100 clients.
#
# Every selected group is checked even when an earlier one fails: the
# per-group summary at the end names each PASS/FAIL/MISSING group, and the
# script exits non-zero if any group failed or its report is missing.
set -euo pipefail
cd "$(dirname "$0")/.."

GROUP="${1:-all}"
case "$GROUP" in
    mapred|query|scale|plan|extvp|recover|serve|all) ;;
    *)
        echo "usage: $0 [mapred|query|scale|plan|extvp|recover|serve|all]" >&2
        exit 2
        ;;
esac

# Cargo runs bench binaries with cwd = the *package* directory, so a relative
# RAPIDA_BENCH_DIR would land under crates/bench/ — force it absolute.
DEST="${RAPIDA_BENCH_DIR:-$(pwd)}"
case "$DEST" in /*) ;; *) DEST="$(pwd)/$DEST" ;; esac
mkdir -p "$DEST"
export RAPIDA_BENCH_DIR="$DEST"

run_mapred() {
    echo "==> shuffle data-path bench (writes BENCH_mapred.json)"
    cargo bench --offline -p rapida-bench --bench shuffle

    echo "==> operator microbenches"
    cargo bench --offline -p rapida-bench --bench operators

    echo "==> Fig. 8 engine-comparison benches"
    cargo bench --offline -p rapida-bench --bench fig8a_bsbm
    cargo bench --offline -p rapida-bench --bench fig8b_bsbm
    cargo bench --offline -p rapida-bench --bench fig8c_chem
}

run_query() {
    echo "==> Fig. 8 view-vs-owned query bench (writes BENCH_query.json)"
    cargo bench --offline -p rapida-bench --bench query
}

run_scale() {
    echo "==> worker-count scaling bench (writes BENCH_scale.json)"
    cargo bench --offline -p rapida-bench --bench scale
}

run_plan() {
    echo "==> enumerator vs fixed-plan bench (writes BENCH_plan.json)"
    cargo bench --offline -p rapida-bench --bench plan
}

run_extvp() {
    echo "==> ExtVP vs full-scan bench (writes BENCH_extvp.json)"
    cargo bench --offline -p rapida-bench --bench extvp
}

run_recover() {
    echo "==> checkpoint vs restart recovery bench (writes BENCH_recover.json)"
    cargo bench --offline -p rapida-bench --bench recover
}

run_serve() {
    echo "==> batched-MQO serving vs serial baseline bench (writes BENCH_serve.json)"
    cargo bench --offline -p rapida-bench --bench serve
}

# Per-group verdicts: every selected group runs its checks even when an
# earlier group failed, so one regression cannot hide another. The final
# summary names each group PASS / FAIL / MISSING.
SUMMARY=()
ANY_FAILED=0
check_group() {
    local grp="$1" file="$2" fn="$3"
    if [ ! -f "$DEST/$file" ]; then
        echo "==> $file not found in $DEST — skipping its checks" >&2
        SUMMARY+=("$grp: MISSING ($file)")
        ANY_FAILED=1
        return 0
    fi
    if "$fn"; then
        SUMMARY+=("$grp: PASS")
    else
        SUMMARY+=("$grp: FAIL")
        ANY_FAILED=1
    fi
}

check_mapred() {
    echo "==> checking BENCH_mapred.json"
    python3 - "$DEST/BENCH_mapred.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_id = {b["id"]: b for b in report["benchmarks"]}
try:
    legacy = next(v for k, v in by_id.items() if k.startswith("shuffle_legacy_pairs/"))
    arena = next(v for k, v in by_id.items() if k.startswith("shuffle_arena_merge/"))
except StopIteration:
    sys.exit(f"FAIL: {path} lacks shuffle_legacy_pairs/* or shuffle_arena_merge/*")
ratio = legacy["median_ns"] / arena["median_ns"]
print(f"  legacy median: {legacy['median_ns'] / 1e6:.1f} ms")
print(f"  arena  median: {arena['median_ns'] / 1e6:.1f} ms")
print(f"  speedup: {ratio:.2f}x")
if not report.get("smoke") and ratio < 2.0:
    sys.exit(f"FAIL: arena shuffle speedup {ratio:.2f}x is below the 2x floor")
EOF
}

check_query() {
    echo "==> checking BENCH_query.json"
    python3 - "$DEST/BENCH_query.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_id = {b["id"]: b for b in report["benchmarks"]}
ratios = []
for bid, views in sorted(by_id.items()):
    if not bid.startswith("views/"):
        continue
    qid = bid.split("/", 1)[1]
    legacy = by_id.get(f"legacy_owned/{qid}")
    if legacy is None:
        sys.exit(f"FAIL: {path} has {bid} but no legacy_owned/{qid}")
    ratio = legacy["median_ns"] / views["median_ns"]
    ratios.append(ratio)
    print(
        f"  {qid}: views {views['median_ns'] / 1e6:.2f} ms"
        f"  legacy {legacy['median_ns'] / 1e6:.2f} ms"
        f"  speedup {ratio:.2f}x"
    )
if not ratios:
    sys.exit(f"FAIL: {path} has no views/* benchmarks")
ratios.sort()
mid = len(ratios) // 2
median = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
print(f"  median speedup: {median:.2f}x")
if not report.get("smoke") and median < 1.3:
    sys.exit(f"FAIL: view-path median speedup {median:.2f}x is below the 1.3x floor")
EOF
}

check_scale() {
    echo "==> checking BENCH_scale.json"
    python3 - "$DEST/BENCH_scale.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_workers = {}
for b in report["benchmarks"]:
    # ids look like shuffle_1m/w4 (shuffle_50k/w4 in smoke mode)
    tag, _, w = b["id"].partition("/w")
    if w.isdigit():
        by_workers[int(w)] = b
if not by_workers:
    sys.exit(f"FAIL: {path} has no <workload>/w<N> benchmarks")
base = by_workers.get(1)
if base is None:
    sys.exit(f"FAIL: {path} lacks the 1-worker baseline")
for w in sorted(by_workers):
    b = by_workers[w]
    speedup = base["median_ns"] / b["median_ns"]
    print(f"  w{w}: busy makespan {b['median_ns'] / 1e6:.1f} ms  ({speedup:.2f}x vs w1)")
four = by_workers.get(4)
if four is None:
    sys.exit(f"FAIL: {path} lacks the 4-worker point")
ratio = base["median_ns"] / four["median_ns"]
if not report.get("smoke") and ratio < 2.0:
    sys.exit(f"FAIL: 4-worker speedup {ratio:.2f}x is below the 2x floor")
EOF
}

check_plan() {
    echo "==> checking BENCH_plan.json"
    python3 - "$DEST/BENCH_plan.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_id = {b["id"]: b["median_ns"] for b in report["benchmarks"]}
queries = sorted({i.split("/", 1)[1] for i in by_id if "/" in i})
if not queries:
    sys.exit(f"FAIL: {path} has no <label>/<query> benchmarks")
families = {
    "chosen_hive": ["fixed_hive_naive", "fixed_hive_mqo"],
    "chosen_rapid": ["fixed_rapid_plus", "fixed_rapida"],
}
best_vs_mqo = 0.0
for q in queries:
    for chosen, fixes in families.items():
        c = by_id.get(f"{chosen}/{q}")
        if c is None:
            sys.exit(f"FAIL: {path} lacks {chosen}/{q}")
        for fx in fixes:
            f_ns = by_id.get(f"{fx}/{q}")
            if f_ns is None:
                sys.exit(f"FAIL: {path} lacks {fx}/{q}")
            if not report.get("smoke") and c > f_ns * 1.001:
                sys.exit(
                    f"FAIL: {chosen}/{q} ({c / 1e9:.1f}s) worse than {fx}/{q} ({f_ns / 1e9:.1f}s)"
                )
    mqo = by_id[f"fixed_hive_mqo/{q}"]
    for chosen in families:
        best_vs_mqo = max(best_vs_mqo, mqo / by_id[f"{chosen}/{q}"])
    print(
        f"  {q}: chosen hive {by_id[f'chosen_hive/{q}'] / 1e9:.1f}s"
        f" (fixed mqo {mqo / 1e9:.1f}s)"
        f"  chosen rapid {by_id[f'chosen_rapid/{q}'] / 1e9:.1f}s"
    )
print(f"  best chosen-vs-fixed-HiveMQO speedup: {best_vs_mqo:.2f}x")
if not report.get("smoke") and best_vs_mqo < 1.1:
    sys.exit(f"FAIL: no chosen plan beats fixed Hive-MQO by 1.1x (best {best_vs_mqo:.2f}x)")
EOF
}

check_extvp() {
    echo "==> checking BENCH_extvp.json"
    python3 - "$DEST/BENCH_extvp.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_id = {b["id"]: b["median_ns"] for b in report["benchmarks"]}
best_mg = 0.0
pairs = 0
for bid in sorted(by_id):
    if not bid.startswith("extvp/"):
        continue
    pair = bid.split("/", 1)[1]  # e.g. MG2_hive
    full = by_id.get(f"fullscan/{pair}")
    if full is None:
        sys.exit(f"FAIL: {path} has {bid} but no fullscan/{pair}")
    pairs += 1
    ratio = full / by_id[bid]
    print(
        f"  {pair}: fullscan {full / 1e9:.1f}s  extvp {by_id[bid] / 1e9:.1f}s"
        f"  speedup {ratio:.2f}x"
    )
    if not report.get("smoke") and ratio < 0.999:
        sys.exit(f"FAIL: extvp/{pair} is worse than the full-scan baseline ({ratio:.2f}x)")
    if pair.startswith("MG"):
        best_mg = max(best_mg, ratio)
if pairs == 0:
    sys.exit(f"FAIL: {path} has no extvp/* benchmarks")
print(f"  best MG speedup: {best_mg:.2f}x")
if not report.get("smoke") and best_mg < 1.2:
    sys.exit(f"FAIL: no MG pair beats the full-scan baseline by 1.2x (best {best_mg:.2f}x)")
EOF
}

check_recover() {
    echo "==> checking BENCH_recover.json"
    python3 - "$DEST/BENCH_recover.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_id = {b["id"]: b["median_ns"] for b in report["benchmarks"]}
restart = by_id.get("recomputed/restart_MG1")
ckpt = by_id.get("recomputed/checkpoint_MG1")
if restart is None or ckpt is None:
    sys.exit(f"FAIL: {path} lacks recomputed/restart_MG1 + recomputed/checkpoint_MG1")
if ckpt <= 0:
    sys.exit(f"FAIL: checkpoint resume recomputed nothing — the kill never fired")
ratio = restart / ckpt
print(f"  full restart recomputes:     {restart:.0f} B")
print(f"  checkpoint resume recomputes: {ckpt:.0f} B")
print(f"  recomputation margin: {ratio:.2f}x")
if not report.get("smoke") and ratio < 2.0:
    sys.exit(f"FAIL: restart/checkpoint recomputation margin {ratio:.2f}x is below the 2x floor")
o_restart = by_id.get("overhead/restart_MG1")
o_ckpt = by_id.get("overhead/checkpoint_MG1")
if o_restart is not None and o_ckpt is not None:
    print(
        f"  model recovery overhead: restart {o_restart / 1e9:.1f}s,"
        f" checkpoint {o_ckpt / 1e9:.1f}s"
    )
    if not report.get("smoke") and o_restart <= o_ckpt:
        sys.exit("FAIL: the cost model charges checkpoint resume at least as much as restart")
EOF
}

check_serve() {
    echo "==> checking BENCH_serve.json"
    python3 - "$DEST/BENCH_serve.json" <<'EOF'
import json, sys

path = sys.argv[1]
try:
    with open(path) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: {path} missing or malformed: {e}")
by_id = {b["id"]: b["median_ns"] for b in report["benchmarks"]}
# Simulated quantities are deterministic, so (like the recovery margin)
# every serve floor is enforced even in smoke mode.
for clients in (10, 100, 1000):
    for mode in ("batched", "serial"):
        if f"qpq/{mode}_c{clients}" not in by_id:
            sys.exit(f"FAIL: {path} lacks qpq/{mode}_c{clients}")
    b = by_id[f"qpq/batched_c{clients}"]
    s = by_id[f"qpq/serial_c{clients}"]
    if b <= 0 or s <= 0:
        sys.exit(f"FAIL: non-positive qpq median at c{clients}")
    ratio = s / b
    hit = by_id.get(f"cache_hit/batched_c{clients}", 0.0) / 1e9
    print(
        f"  c{clients}: batched {1e9 / b:.2f} q/s  serial {1e9 / s:.2f} q/s"
        f"  speedup {ratio:.2f}x  cache hits {100 * hit:.0f}%"
    )
    if ratio <= 1.0:
        sys.exit(f"FAIL: batched serving loses to serial at c{clients} ({ratio:.2f}x)")
    if hit <= 0.0:
        sys.exit(f"FAIL: the scan cache never hit at c{clients}")
ratio100 = by_id["qpq/serial_c100"] / by_id["qpq/batched_c100"]
print(f"  floor: batched/serial at 100 clients = {ratio100:.2f}x (>= 1.5x required)")
if ratio100 < 1.5:
    sys.exit(
        f"FAIL: batched/serial throughput {ratio100:.2f}x at 100 clients is below the 1.5x floor"
    )
EOF
}

if [ "$GROUP" = "mapred" ] || [ "$GROUP" = "all" ]; then
    run_mapred
fi
if [ "$GROUP" = "query" ] || [ "$GROUP" = "all" ]; then
    run_query
fi
if [ "$GROUP" = "scale" ] || [ "$GROUP" = "all" ]; then
    run_scale
fi
if [ "$GROUP" = "plan" ] || [ "$GROUP" = "all" ]; then
    run_plan
fi
if [ "$GROUP" = "extvp" ] || [ "$GROUP" = "all" ]; then
    run_extvp
fi
if [ "$GROUP" = "recover" ] || [ "$GROUP" = "all" ]; then
    run_recover
fi
if [ "$GROUP" = "serve" ] || [ "$GROUP" = "all" ]; then
    run_serve
fi
if [ "$GROUP" = "mapred" ] || [ "$GROUP" = "all" ]; then
    check_group mapred BENCH_mapred.json check_mapred
fi
if [ "$GROUP" = "query" ] || [ "$GROUP" = "all" ]; then
    check_group query BENCH_query.json check_query
fi
if [ "$GROUP" = "scale" ] || [ "$GROUP" = "all" ]; then
    check_group scale BENCH_scale.json check_scale
fi
if [ "$GROUP" = "plan" ] || [ "$GROUP" = "all" ]; then
    check_group plan BENCH_plan.json check_plan
fi
if [ "$GROUP" = "extvp" ] || [ "$GROUP" = "all" ]; then
    check_group extvp BENCH_extvp.json check_extvp
fi
if [ "$GROUP" = "recover" ] || [ "$GROUP" = "all" ]; then
    check_group recover BENCH_recover.json check_recover
fi
if [ "$GROUP" = "serve" ] || [ "$GROUP" = "all" ]; then
    check_group serve BENCH_serve.json check_serve
fi

echo "==> per-group summary:"
for line in "${SUMMARY[@]}"; do
    echo "    $line"
done
if [ "$ANY_FAILED" -ne 0 ]; then
    echo "==> bench report FAILED" >&2
    exit 1
fi
echo "==> bench report OK ($DEST)"
