#!/usr/bin/env bash
# Tier-1 verification: everything must pass with no network access.
#
#   build (release)  ->  full workspace test suite  ->  chaos smoke  ->  bench smoke
#
# The bench smoke runs every bench target with one timed iteration per
# benchmark (RAPIDA_BENCH_SMOKE=1), which proves the harnesses execute
# end-to-end without paying for a real measurement run. JSON reports land
# in target/bench-smoke/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

echo "==> chaos smoke (4 fault seeds x worker counts, incl. corruption sweeps)"
RAPIDA_CHAOS_SEEDS=4 cargo test -q --offline -p rapida-mapred --test chaos

echo "==> integrity smoke (checksum quarantine + checksums-off divergence)"
cargo test -q --offline -p rapida-mapred --test integrity --test recover

echo "==> scale smoke (worker-count determinism matrix)"
cargo test -q --offline --test scale_identity

echo "==> plan-enumerator smoke (golden snapshots + NTGA rediscovery)"
cargo test -q --offline -p rapida-core --test plan_snapshots

echo "==> ExtVP byte-identity smoke (reductions vs full scans)"
cargo test -q --offline --test extvp_identity

echo "==> serving smoke (batched-MQO identity + replay ledger, small traffic)"
RAPIDA_SERVE_ROUNDS=2 RAPIDA_CHAOS_SEEDS=2 cargo test -q --offline --test serve_identity

echo "==> serving CLI smoke (2 clients, 2 batching windows, both modes)"
./target/release/rapida serve --clients 2 --duration-ms 150 --window-ms 100 --seed 7 > /dev/null
./target/release/rapida serve --mode serial --clients 2 --duration-ms 150 --window-ms 100 --seed 7 > /dev/null

echo "==> bench smoke (1 iteration per benchmark)"
# Absolute path: bench binaries run with cwd = crates/bench, where a
# relative RAPIDA_BENCH_DIR would silently land.
RAPIDA_BENCH_SMOKE=1 RAPIDA_BENCH_DIR="$(pwd)/target/bench-smoke" \
    cargo bench --offline -p rapida-bench

echo "==> bench report smoke (scripts/bench_report.sh all)"
RAPIDA_BENCH_SMOKE=1 RAPIDA_BENCH_DIR="$(pwd)/target/bench-smoke" \
    scripts/bench_report.sh all

echo "==> BENCH_mapred.json present and well-formed"
python3 - target/bench-smoke/BENCH_mapred.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_mapred.json missing or malformed: {e}")
ids = [b["id"] for b in report["benchmarks"]]
for prefix in ("shuffle_legacy_pairs/", "shuffle_arena_merge/"):
    if not any(i.startswith(prefix) for i in ids):
        sys.exit(f"FAIL: BENCH_mapred.json lacks a {prefix}* benchmark")
print(f"  ok: {ids}")
EOF

echo "==> BENCH_query.json present and well-formed"
python3 - target/bench-smoke/BENCH_query.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_query.json missing or malformed: {e}")
ids = [b["id"] for b in report["benchmarks"]]
for prefix in ("views/", "legacy_owned/"):
    if not any(i.startswith(prefix) for i in ids):
        sys.exit(f"FAIL: BENCH_query.json lacks a {prefix}* benchmark")
print(f"  ok: {ids}")
EOF

echo "==> BENCH_scale.json present and well-formed"
python3 - target/bench-smoke/BENCH_scale.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_scale.json missing or malformed: {e}")
ids = [b["id"] for b in report["benchmarks"]]
for w in (1, 2, 4, 8):
    if not any(i.endswith(f"/w{w}") for i in ids):
        sys.exit(f"FAIL: BENCH_scale.json lacks a */w{w} benchmark")
print(f"  ok: {ids}")
EOF

echo "==> BENCH_plan.json present and well-formed"
python3 - target/bench-smoke/BENCH_plan.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_plan.json missing or malformed: {e}")
ids = [b["id"] for b in report["benchmarks"]]
for prefix in ("fixed_hive_mqo/", "chosen_hive/", "chosen_rapid/"):
    if not any(i.startswith(prefix) for i in ids):
        sys.exit(f"FAIL: BENCH_plan.json lacks a {prefix}* benchmark")
print(f"  ok: {len(ids)} benchmarks")
EOF

echo "==> BENCH_extvp.json present and well-formed"
python3 - target/bench-smoke/BENCH_extvp.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_extvp.json missing or malformed: {e}")
ids = [b["id"] for b in report["benchmarks"]]
for prefix in ("fullscan/", "extvp/"):
    if not any(i.startswith(prefix) for i in ids):
        sys.exit(f"FAIL: BENCH_extvp.json lacks a {prefix}* benchmark")
print(f"  ok: {len(ids)} benchmarks")
EOF

echo "==> BENCH_recover.json present, well-formed, and above the 2x floor"
python3 - target/bench-smoke/BENCH_recover.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_recover.json missing or malformed: {e}")
by_id = {b["id"]: b["median_ns"] for b in report["benchmarks"]}
restart = by_id.get("recomputed/restart_MG1")
ckpt = by_id.get("recomputed/checkpoint_MG1")
if restart is None or ckpt is None or ckpt <= 0:
    sys.exit("FAIL: BENCH_recover.json lacks the recomputed restart/checkpoint pair")
ratio = restart / ckpt
# The margin is deterministic (recomputed bytes, not wall time), so it is
# checked even in smoke mode.
if ratio < 2.0:
    sys.exit(f"FAIL: restart/checkpoint recomputation margin {ratio:.2f}x below 2x")
print(f"  ok: recomputation margin {ratio:.2f}x")
EOF

echo "==> BENCH_serve.json present, well-formed, and above the 1.5x floor"
python3 - target/bench-smoke/BENCH_serve.json <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        report = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"FAIL: BENCH_serve.json missing or malformed: {e}")
by_id = {b["id"]: b["median_ns"] for b in report["benchmarks"]}
for clients in (10, 100, 1000):
    for mode in ("batched", "serial"):
        if f"qpq/{mode}_c{clients}" not in by_id:
            sys.exit(f"FAIL: BENCH_serve.json lacks qpq/{mode}_c{clients}")
batched = by_id["qpq/batched_c100"]
serial = by_id["qpq/serial_c100"]
if batched <= 0:
    sys.exit("FAIL: non-positive batched qpq median at c100")
ratio = serial / batched
# Throughput is deterministic (simulated model seconds, not wall time),
# so the floor is checked even in smoke mode.
if ratio < 1.5:
    sys.exit(f"FAIL: batched/serial throughput {ratio:.2f}x at 100 clients below 1.5x")
print(f"  ok: batched/serial throughput at 100 clients {ratio:.2f}x")
EOF

echo "==> verify OK"
