#!/usr/bin/env bash
# Tier-1 verification: everything must pass with no network access.
#
#   build (release)  ->  full workspace test suite  ->  chaos smoke  ->  bench smoke
#
# The bench smoke runs every bench target with one timed iteration per
# benchmark (RAPIDA_BENCH_SMOKE=1), which proves the harnesses execute
# end-to-end without paying for a real measurement run. JSON reports land
# in target/bench-smoke/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --workspace --offline"
cargo test -q --workspace --offline

echo "==> chaos smoke (4 fault seeds x worker counts)"
RAPIDA_CHAOS_SEEDS=4 cargo test -q --offline -p rapida-mapred --test chaos

echo "==> bench smoke (1 iteration per benchmark)"
RAPIDA_BENCH_SMOKE=1 RAPIDA_BENCH_DIR=target/bench-smoke \
    cargo bench --offline -p rapida-bench

echo "==> verify OK"
