//! # RAPIDA
//!
//! A from-scratch Rust reproduction of *"Optimization of Complex SPARQL
//! Analytical Queries"* (EDBT 2016): the RAPIDAnalytics system — algebraic
//! optimization of SPARQL analytical queries via composite graph patterns
//! and decoupled grouping-aggregation over the Nested TripleGroup Algebra —
//! together with the three baselines the paper compares against, a
//! MapReduce execution simulator, both storage layouts, synthetic dataset
//! generators and the full evaluated query catalog.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`rdf`] | `rapida-rdf` | terms, dictionary, triples, N-Triples |
//! | [`sparql`] | `rapida-sparql` | parser, AST, analysis, reference evaluator |
//! | [`mapred`] | `rapida-mapred` | MapReduce simulator + cluster cost model |
//! | [`storage`] | `rapida-storage` | vertical partitions + triplegroup store |
//! | [`ntga`] | `rapida-ntga` | triplegroups + the paper's operators |
//! | [`core`] | `rapida-core` | overlap, composite patterns, the 4 engines |
//! | [`datagen`] | `rapida-datagen` | BSBM/Chem/PubMed generators + queries |
//! | [`serve`] | `rapida-serve` | batched-MQO serving front end + scan cache |
//!
//! ## Quickstart
//!
//! ```
//! use rapida::prelude::*;
//!
//! // Generate a small BSBM-like dataset and load it into both layouts.
//! let graph = rapida::datagen::generate_bsbm(&rapida::datagen::BsbmConfig::tiny());
//! let cat = DataCatalog::load(&graph);
//! let mr = MrEngine::new(cat.dfs.clone());
//!
//! // Run the paper's MG1 with the paper's engine.
//! let q = rapida::datagen::query("MG1");
//! let engine = RapidAnalytics::default();
//! let (result, metrics, _plan) = run_query(&engine, &q.sparql, &cat, &mr).unwrap();
//! assert_eq!(metrics.cycles(), 3); // the paper's cycle count for MG1
//! assert!(!result.is_empty());
//! ```

pub use rapida_core as core;
pub use rapida_datagen as datagen;
pub use rapida_mapred as mapred;
pub use rapida_ntga as ntga;
pub use rapida_rdf as rdf;
pub use rapida_serve as serve;
pub use rapida_sparql as sparql;
pub use rapida_storage as storage;

/// Common imports for applications.
pub mod prelude {
    pub use rapida_core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
    pub use rapida_core::{
        extract, run_query, AnalyticalQuery, DataCatalog, PlanError, QueryEngine, QueryPlan,
    };
    pub use rapida_mapred::{ClusterModel, Engine as MrEngine, SimDfs, WorkflowMetrics};
    pub use rapida_serve::{ServeConfig, ServeMode, ServeReport, Server};
    pub use rapida_rdf::{Dictionary, Graph, Term, TermId, Triple};
    pub use rapida_sparql::{evaluate, parse_query, Cell, Relation};
}
