//! `rapida` — command-line front end: run or explain SPARQL analytical
//! queries over N-Triples data (or a built-in synthetic dataset) with any of
//! the four engines.
//!
//! ```text
//! rapida run     --engine ra --data data.nt --query query.rq
//! rapida run     --engine all --dataset bsbm --id MG3
//! rapida explain --engine hive --dataset chem --id MG6
//! rapida serve   --dataset bsbm --clients 10 --duration-ms 400
//! rapida catalog                      # list the built-in query catalog
//! ```

use rapida::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  rapida run     [--engine hive|mqo|rapid|ra|all] (--data FILE.nt --query FILE.rq | --dataset bsbm|chem|pubmed [--id QID])
  rapida explain [--engine hive|mqo|rapid|ra|all] (--data FILE.nt --query FILE.rq | --dataset bsbm|chem|pubmed [--id QID])
  rapida serve   [--dataset bsbm|chem|pubmed] [--mode batched|serial] [--clients N] [--duration-ms MS] [--window-ms MS] [--seed N]
  rapida catalog"
    );
    ExitCode::from(2)
}

struct Args {
    cmd: String,
    engine: String,
    data: Option<String>,
    query: Option<String>,
    dataset: Option<String>,
    id: Option<String>,
    mode: String,
    clients: usize,
    duration_ms: u64,
    window_ms: u64,
    seed: u64,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next()?;
    let mut a = Args {
        cmd,
        engine: "ra".to_string(),
        data: None,
        query: None,
        dataset: None,
        id: None,
        mode: "batched".to_string(),
        clients: 10,
        duration_ms: 400,
        window_ms: 100,
        seed: 42,
    };
    while let Some(flag) = argv.next() {
        let value = argv.next()?;
        match flag.as_str() {
            "--engine" => a.engine = value,
            "--data" => a.data = Some(value),
            "--query" => a.query = Some(value),
            "--dataset" => a.dataset = Some(value),
            "--id" => a.id = Some(value),
            "--mode" => a.mode = value,
            "--clients" => a.clients = value.parse().ok()?,
            "--duration-ms" => a.duration_ms = value.parse().ok()?,
            "--window-ms" => a.window_ms = value.parse().ok()?,
            "--seed" => a.seed = value.parse().ok()?,
            _ => return None,
        }
    }
    Some(a)
}

fn engines_for(name: &str) -> Option<Vec<Box<dyn QueryEngine>>> {
    Some(match name {
        "hive" => vec![Box::new(HiveNaive::default())],
        "mqo" => vec![Box::new(HiveMqo::default())],
        "rapid" => vec![Box::new(RapidPlus::default())],
        "ra" => vec![Box::new(RapidAnalytics::default())],
        "all" => vec![
            Box::new(HiveNaive::default()),
            Box::new(HiveMqo::default()),
            Box::new(RapidPlus::default()),
            Box::new(RapidAnalytics::default()),
        ],
        _ => return None,
    })
}

fn load_inputs(a: &Args) -> Result<(Graph, String), String> {
    match (&a.data, &a.dataset) {
        (Some(data), None) => {
            let text = std::fs::read_to_string(data)
                .map_err(|e| format!("cannot read {data}: {e}"))?;
            let triples =
                rapida::rdf::parse_ntriples(&text).map_err(|e| format!("{data}: {e}"))?;
            let mut g = Graph::new();
            g.insert_term_triples(&triples);
            let qfile = a
                .query
                .as_ref()
                .ok_or("--data requires --query")?;
            let sparql = std::fs::read_to_string(qfile)
                .map_err(|e| format!("cannot read {qfile}: {e}"))?;
            Ok((g, sparql))
        }
        (None, Some(ds)) => {
            let g = match ds.as_str() {
                "bsbm" => rapida::datagen::generate_bsbm(&rapida::datagen::BsbmConfig::small()),
                "chem" => rapida::datagen::generate_chem(&rapida::datagen::ChemConfig::default()),
                "pubmed" => {
                    rapida::datagen::generate_pubmed(&rapida::datagen::PubmedConfig::default())
                }
                other => return Err(format!("unknown dataset '{other}'")),
            };
            let id = a.id.clone().unwrap_or_else(|| "MG1".to_string());
            let q = rapida::datagen::catalog()
                .into_iter()
                .find(|q| q.id == id)
                .ok_or_else(|| format!("unknown catalog query '{id}'"))?;
            Ok((g, q.sparql))
        }
        _ => Err("provide either --data FILE.nt --query FILE.rq or --dataset NAME".to_string()),
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    match args.cmd.as_str() {
        "catalog" => {
            println!("{:<6} {:<8} {:<4} groupings", "id", "dataset", "sel");
            for q in rapida::datagen::catalog() {
                let workload = format!("{:?}", q.workload).to_lowercase();
                println!(
                    "{:<6} {workload:<8} {:<4} {}",
                    q.id,
                    q.selectivity.unwrap_or("-"),
                    q.groups.join(" vs ")
                );
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            use rapida::serve::{ServeConfig, ServeMode, Server};
            let mode = match args.mode.as_str() {
                "batched" => ServeMode::Batched,
                "serial" => ServeMode::Serial,
                _ => return usage(),
            };
            let ds = args.dataset.clone().unwrap_or_else(|| "bsbm".to_string());
            let graph = match ds.as_str() {
                "bsbm" => rapida::datagen::generate_bsbm(&rapida::datagen::BsbmConfig::small()),
                "chem" => rapida::datagen::generate_chem(&rapida::datagen::ChemConfig::default()),
                "pubmed" => {
                    rapida::datagen::generate_pubmed(&rapida::datagen::PubmedConfig::default())
                }
                other => {
                    eprintln!("error: unknown dataset '{other}'");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("loaded {} triples", graph.len());
            let config = ServeConfig {
                mode,
                window_ms: args.window_ms,
                ..ServeConfig::default()
            };
            let server = Server::new(&graph, config);
            let traffic = rapida::datagen::TrafficConfig::bsbm_mix(
                args.seed,
                args.clients,
                args.duration_ms,
            );
            let events = rapida::datagen::generate_traffic(&traffic);
            eprintln!(
                "{} requests from {} clients over {} ms of arrivals",
                events.len(),
                args.clients,
                args.duration_ms
            );
            server.enqueue_traffic(&events);
            let report = server.drain();
            for w in &report.ledger.windows {
                println!(
                    "window {:>3}: {:>3} arrivals, {:>2} unique, {:>2} groups \
                     ({} fused members, {} shared jobs), cache {}h/{}m/{}e",
                    w.window,
                    w.arrivals,
                    w.unique,
                    w.groups,
                    w.fused_members,
                    w.shared_jobs,
                    w.cache.hits,
                    w.cache.misses,
                    w.cache.evictions,
                );
            }
            println!("{}", report.summary());
            ExitCode::SUCCESS
        }
        cmd @ ("run" | "explain") => {
            let Some(engines) = engines_for(&args.engine) else {
                return usage();
            };
            let (graph, sparql) = match load_inputs(&args) {
                Ok(x) => x,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("loaded {} triples", graph.len());
            let cat = DataCatalog::load(&graph);
            let mr = MrEngine::new(cat.dfs.clone());
            let parsed = match parse_query(&sparql) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let aq = match rapida::core::extract(&parsed) {
                Ok(aq) => aq,
                Err(e) => {
                    eprintln!("not an analytical query: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for engine in &engines {
                let plan = match engine.plan(&aq, &cat) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{}: planning failed: {e}", engine.name());
                        return ExitCode::FAILURE;
                    }
                };
                if cmd == "explain" {
                    print!("{}", plan.explain());
                    continue;
                }
                let (rel, wf) = plan.execute(&mr, &aq, &cat.dict);
                eprintln!(
                    "{}: {} rows, {} cycles, {:.2} MB shuffled",
                    engine.name(),
                    rel.len(),
                    wf.cycles(),
                    wf.total_shuffle_bytes() as f64 / 1e6
                );
                if engines.len() == 1 {
                    print!("{}", rel.pretty(&cat.dict));
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
