//! Property-based engine agreement: random small graphs, four query
//! templates covering the analytical shapes (overlapping multi-grouping,
//! shared keys, filters, non-overlapping fallback) — every engine must
//! agree with the reference evaluator on the result multiset.

use rapida_testkit::prelude::*;
use rapida::prelude::*;
use rapida::rdf::vocab;

fn iri(s: String) -> Term {
    Term::iri(format!("http://x/{s}"))
}

/// A random two-class graph: X subjects (typed, with multi-valued `pa`/`pb`)
/// and L subjects (linking to X, with numeric `pc` and optional `pd`).
#[derive(Debug, Clone)]
struct RandomGraph {
    xs: Vec<(u8, Vec<u8>, Vec<u8>)>, // (type, pa values, pb values)
    ls: Vec<(u8, u8, Option<u8>)>,   // (x target, pc value, pd value)
}

impl RandomGraph {
    fn build(&self) -> Graph {
        let mut g = Graph::new();
        let n_x = self.xs.len().max(1) as u8;
        for (i, (ty, pas, pbs)) in self.xs.iter().enumerate() {
            let s = iri(format!("x{i}"));
            g.insert_terms(
                &s,
                &Term::iri(vocab::RDF_TYPE),
                &iri(format!("T{}", ty % 2)),
            );
            for a in pas {
                g.insert_terms(&s, &iri("pa".into()), &iri(format!("a{}", a % 4)));
            }
            for b in pbs {
                g.insert_terms(&s, &iri("pb".into()), &iri(format!("b{}", b % 3)));
            }
        }
        for (i, (x, pc, pd)) in self.ls.iter().enumerate() {
            let s = iri(format!("l{i}"));
            g.insert_terms(&s, &iri("lx".into()), &iri(format!("x{}", x % n_x)));
            g.insert_terms(&s, &iri("pc".into()), &Term::integer(i64::from(*pc % 20)));
            if let Some(d) = pd {
                g.insert_terms(&s, &iri("pd".into()), &iri(format!("d{}", d % 3)));
            }
        }
        g
    }
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    let x = (
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..3),
        prop::collection::vec(any::<u8>(), 0..3),
    );
    let l = (any::<u8>(), any::<u8>(), prop::option::of(any::<u8>()));
    (
        prop::collection::vec(x, 1..8),
        prop::collection::vec(l, 0..12),
    )
        .prop_map(|(xs, ls)| RandomGraph { xs, ls })
}

const P: &str = "PREFIX ex: <http://x/>\n";

fn templates() -> Vec<(&'static str, String)> {
    vec![
        (
            "overlapping, pa secondary to block 2",
            format!(
                "{P}SELECT ?a ?n1 ?s1 ?n2 {{
                   {{ SELECT ?a (COUNT(?c) AS ?n1) (SUM(?c) AS ?s1)
                      {{ ?x a ex:T0 ; ex:pa ?a . ?l ex:lx ?x ; ex:pc ?c . }} GROUP BY ?a }}
                   {{ SELECT (COUNT(?c2) AS ?n2)
                      {{ ?x2 a ex:T0 . ?l2 ex:lx ?x2 ; ex:pc ?c2 . }} }}
                 }}"
            ),
        ),
        (
            "shared group key, pb secondary",
            format!(
                "{P}SELECT ?a ?nb ?na {{
                   {{ SELECT ?a (COUNT(?c) AS ?nb)
                      {{ ?x a ex:T1 ; ex:pa ?a ; ex:pb ?b . ?l ex:lx ?x ; ex:pc ?c . }}
                      GROUP BY ?a }}
                   {{ SELECT ?a (COUNT(?c2) AS ?na)
                      {{ ?x2 a ex:T1 ; ex:pa ?a . ?l2 ex:lx ?x2 ; ex:pc ?c2 . }}
                      GROUP BY ?a }}
                 }}"
            ),
        ),
        (
            "filtered single block",
            format!(
                "{P}SELECT ?a (COUNT(?c) AS ?n) (MAX(?c) AS ?hi) {{
                   ?x ex:pa ?a . ?l ex:lx ?x ; ex:pc ?c . FILTER(?c >= 5)
                 }} GROUP BY ?a"
            ),
        ),
        (
            "non-overlapping fallback",
            format!(
                "{P}SELECT ?n1 ?n2 {{
                   {{ SELECT (COUNT(?b) AS ?n1) {{ ?x ex:pa ?a ; ex:pb ?b . }} }}
                   {{ SELECT (COUNT(?d) AS ?n2) {{ ?l ex:pc ?c ; ex:pd ?d . }} }}
                 }}"
            ),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn engines_agree_on_random_graphs(rg in random_graph(), template_idx in 0usize..4) {
        let g = rg.build();
        let (label, sparql) = &templates()[template_idx];
        let query = parse_query(sparql).unwrap();
        let expected = evaluate(&query, &g).canonicalized(&g.dict);
        let aq = extract(&query).unwrap();
        let cat = DataCatalog::load(&g);
        let mr = MrEngine::pinned(cat.dfs.clone());
        let engines: Vec<Box<dyn QueryEngine>> = vec![
            Box::new(HiveNaive::default()),
            Box::new(HiveMqo::default()),
            Box::new(RapidPlus::default()),
            Box::new(RapidAnalytics::default()),
        ];
        for e in &engines {
            let plan = e.plan(&aq, &cat).unwrap();
            let (rel, _wf) = plan.execute(&mr, &aq, &cat.dict);
            prop_assert_eq!(
                rel.canonicalized(&g.dict),
                expected.clone(),
                "{} disagrees on template '{}'",
                e.name(),
                label
            );
        }
    }

    /// Ablated RAPIDAnalytics variants stay correct (they only change cost).
    #[test]
    fn ablated_variants_agree(rg in random_graph()) {
        let g = rg.build();
        let (_, sparql) = &templates()[0];
        let query = parse_query(sparql).unwrap();
        let expected = evaluate(&query, &g).canonicalized(&g.dict);
        let aq = extract(&query).unwrap();
        let cat = DataCatalog::load(&g);
        let mr = MrEngine::pinned(cat.dfs.clone());
        let variants: Vec<RapidAnalytics> = vec![
            RapidAnalytics { map_side_combine: false, ..Default::default() },
            RapidAnalytics { alpha_pruning: false, ..Default::default() },
            RapidAnalytics { parallel_agg: false, ..Default::default() },
        ];
        for v in &variants {
            let plan = v.plan(&aq, &cat).unwrap();
            let (rel, _wf) = plan.execute(&mr, &aq, &cat.dict);
            prop_assert_eq!(rel.canonicalized(&g.dict), expected.clone());
        }
    }
}
