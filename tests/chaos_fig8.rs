//! Chaos over the full Fig. 8 workflow matrix: every (query, engine) pair
//! the paper evaluates must survive injected task failures, stragglers,
//! node loss, read-path corruption and whole-job aborts with byte-identical
//! DFS output — and must report the extra attempts (with correspondingly
//! higher simulated cost) in its metrics, with every detected corruption
//! ledgered and none slipping through silently.
//!
//! This is the acceptance gate for the fault-injection layer: recovery is
//! only correct if the *whole* query pipeline (planner output, shuffle
//! contract, fixups, final join) is invariant under faults.

use rapida::core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida::core::{extract, AnalyticalQuery, DataCatalog, QueryEngine};
use rapida::datagen::{generate_bsbm, generate_chem, query, BsbmConfig, ChemConfig};
use rapida::mapred::{ClusterModel, Engine as MrEngine, FaultPlan, WorkflowMetrics};
use rapida::sparql::parse_query;
use rapida_testkit::chaos::{ChaosConfig, Scenario};

fn engines() -> Vec<Box<dyn QueryEngine>> {
    vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ]
}

/// The sweep grid for the full matrix: trimmed relative to the mapred chaos
/// suite (workers {1, 4}, at most 2 seeds) because it multiplies by 9
/// queries × 4 engines; `RAPIDA_CHAOS_SEEDS=1` shrinks it further.
fn grid() -> ChaosConfig {
    let mut cfg = ChaosConfig::from_env();
    cfg.seeds.truncate(2);
    cfg.workers = vec![1, 4];
    cfg
}

/// What a run observes: the output dataset's exact block bytes plus the
/// committed per-job data-flow counters (attempt counters excluded — those
/// are *supposed* to differ between scenarios). Job names are excluded
/// too: they embed the per-plan id, which differs between plan instances.
type RunSignature = (Vec<Vec<u8>>, Vec<(bool, usize, usize, [u64; 8])>);

fn committed(wf: &WorkflowMetrics) -> Vec<(bool, usize, usize, [u64; 8])> {
    wf.jobs
        .iter()
        .map(|m| {
            (
                m.map_only,
                m.map_tasks,
                m.reduce_tasks,
                [
                    m.input_bytes,
                    m.input_records,
                    m.map_output_records,
                    m.map_output_bytes,
                    m.shuffle_records,
                    m.shuffle_bytes,
                    m.output_records,
                    m.output_bytes,
                ],
            )
        })
        .collect()
}

/// Plan + execute one (query, engine) pair under a scenario, returning the
/// run's signature and its full metrics.
fn run_one(
    cat: &DataCatalog,
    aq: &AnalyticalQuery,
    engine: &dyn QueryEngine,
    scenario: &Scenario,
) -> (RunSignature, WorkflowMetrics) {
    let mut mr = MrEngine::with_workers(cat.dfs.clone(), scenario.workers);
    mr.faults = scenario.fault_seed.map(FaultPlan::chaotic);
    let plan = engine
        .plan(aq, cat)
        .unwrap_or_else(|e| panic!("{} failed to plan: {e}", engine.name()));
    let (_rel, wf) = plan.execute(&mr, aq, &cat.dict);
    let blocks: Vec<Vec<u8>> = cat
        .dfs
        .get(&plan.output_dataset)
        .map(|ds| ds.blocks.iter().map(|b| b.as_ref().to_vec()).collect())
        .unwrap_or_default();
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    ((blocks, committed(&wf)), wf)
}

/// Sweep one catalog's queries through the grid on all four engines.
fn chaos_matrix(cat: &DataCatalog, ids: &[&str]) {
    let model = ClusterModel::nodes10();
    let cfg = grid();
    let scenarios = cfg.scenarios();
    // Corruption detections aggregate across the whole matrix: a single
    // (query, engine) pair may read too few blocks for the corrupting
    // probabilities to fire, but the matrix as a whole must both detect
    // corruption and quarantine all of it (the silent counter stays zero
    // per run, asserted inside the sweep).
    let mut detected = 0u64;
    for id in ids {
        let q = query(id);
        let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
        for engine in engines() {
            let (golden, golden_wf) = run_one(cat, &aq, engine.as_ref(), &scenarios[0]);
            assert!(
                !golden.0.is_empty() || golden_wf.jobs.is_empty(),
                "{id}/{}: golden run produced no output blocks",
                engine.name()
            );
            let golden_cost = model.workflow_time(&golden_wf);
            // Aggregate chaos evidence across the faulted scenarios: the
            // tiny workloads make any single seed's injections sparse, but
            // the sweep as a whole must both retry and speculate.
            let mut injected = 0u64;
            for s in &scenarios[1..] {
                let (got, wf) = run_one(cat, &aq, engine.as_ref(), s);
                assert_eq!(
                    got,
                    golden,
                    "{id}/{}: [{}] diverged from the fault-free golden run",
                    engine.name(),
                    s.label()
                );
                assert_eq!(
                    wf.total_silent_corruptions(),
                    0,
                    "{id}/{}: [{}] corruption slipped past the checksum gate",
                    engine.name(),
                    s.label()
                );
                if s.fault_seed.is_some() {
                    let extra = wf.total_retried_attempts() + wf.total_speculative_attempts();
                    injected += extra;
                    detected += wf.total_corrupt_blocks_detected()
                        + wf.total_corrupt_spills_detected();
                    // Wasted attempts must be charged: strictly costlier
                    // whenever anything was injected.
                    if extra > 0 {
                        assert!(
                            model.workflow_time(&wf) > golden_cost,
                            "{id}/{}: [{}] absorbed {extra} extra attempts but costs no more",
                            engine.name(),
                            s.label()
                        );
                    }
                } else {
                    assert_eq!(wf.total_retried_attempts(), 0);
                    assert_eq!(wf.total_speculative_attempts(), 0);
                }
            }
            assert!(
                injected > 0,
                "{id}/{}: chaotic sweep injected nothing across {} faulted scenarios",
                engine.name(),
                cfg.seeds.len() * cfg.workers.len()
            );
        }
    }
    assert!(
        detected > 0,
        "chaotic sweep detected no corruption across the whole matrix"
    );
}

#[test]
fn bsbm_g_queries_survive_chaos() {
    let cat = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));
    chaos_matrix(&cat, &["G1", "G2", "G3", "G4"]);
}

#[test]
fn bsbm_mg_queries_survive_chaos() {
    let cat = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));
    chaos_matrix(&cat, &["MG1", "MG2", "MG3", "MG4"]);
}

#[test]
fn chem_mg6_survives_chaos() {
    let cat = DataCatalog::load(&generate_chem(&ChemConfig::tiny()));
    chaos_matrix(&cat, &["MG6"]);
}

/// The zero-copy view operators under chaos: a Fig. 8 query run on the
/// view path must (a) produce the exact bytes of the `legacy_owned`
/// owned-decode path, and (b) recover byte-identically from every fault
/// scenario in the sweep. Together these pin the view rewrite's output
/// across both the fault-free and the fault-recovery code paths.
#[test]
fn view_operators_survive_chaos_byte_identically() {
    let cat = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));
    let q = query("MG2");
    let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
    let views = RapidAnalytics::default();
    let legacy = RapidAnalytics {
        legacy_owned: true,
        ..Default::default()
    };

    let cfg = grid();
    let scenarios = cfg.scenarios();
    let (golden, _) = run_one(&cat, &aq, &views, &scenarios[0]);
    let (golden_legacy, _) = run_one(&cat, &aq, &legacy, &scenarios[0]);
    assert_eq!(
        golden, golden_legacy,
        "view path diverged from the owned-decode baseline"
    );

    let mut injected = 0u64;
    for s in &scenarios[1..] {
        let (got, wf) = run_one(&cat, &aq, &views, s);
        assert_eq!(
            got,
            golden,
            "view path [{}] diverged from the fault-free golden run",
            s.label()
        );
        injected += wf.total_retried_attempts() + wf.total_speculative_attempts();
    }
    assert!(
        injected > 0,
        "chaotic sweep injected nothing across the faulted scenarios"
    );
}
