//! Table 2 of the paper as executable tests: composite pattern construction
//! and α-condition generation for each pattern-combination row, plus the
//! α-join behaviour those conditions drive.

use rapida::core::{build_composite, extract, CompositeOutcome};
use rapida::sparql::parse_query;

const P: &str = "PREFIX ex: <http://x/>\n";

/// Build a two-block query whose stars carry the given property lists
/// (single-char property names, two stars per block joined d→a
/// subject-object).
fn two_block_query(gp1: (&str, &str), gp2: (&str, &str)) -> String {
    let star = |subj: &str, props: &str, tag: &str| -> String {
        let mut s = format!("?{subj} ");
        let parts: Vec<String> = props
            .chars()
            .map(|p| format!("ex:{p} ?{p}{tag}"))
            .collect();
        s.push_str(&parts.join(" ; "));
        s.push_str(" .");
        s
    };
    // Star 1 on ?s, star 2 on ?t with an extra joining pattern ?t ex:j ?s.
    format!(
        "{P}SELECT ?n1 ?n2 {{
            {{ SELECT (COUNT(?s1) AS ?n1) {{
               {} {} ?t1 ex:j ?s1 . }} }}
            {{ SELECT (COUNT(?s2) AS ?n2) {{
               {} {} ?t2 ex:j ?s2 . }} }}
        }}",
        star("s1", gp1.0, "_1"),
        star("t1", gp1.1, "_1"),
        star("s2", gp2.0, "_2"),
        star("t2", gp2.1, "_2"),
    )
}

/// α terms for the given block, rendered as sorted "prop=∅"/"prop≠∅"
/// strings for comparison with Table 2.
fn alpha_strings(q: &str, block: usize) -> Vec<String> {
    let aq = extract(&parse_query(q).unwrap()).unwrap();
    match build_composite(&aq.blocks).unwrap() {
        CompositeOutcome::Composite(c) => {
            let mut out: Vec<String> = c.alpha[block]
                .iter()
                .map(|(_, p, required)| {
                    let name = p.prop.lexical().rsplit('/').next().unwrap().to_string();
                    if *required {
                        format!("{name}≠∅")
                    } else {
                        format!("{name}=∅")
                    }
                })
                .collect();
            out.sort();
            out
        }
        CompositeOutcome::NotOverlapping(why) => panic!("expected overlap: {why}"),
    }
}

/// Table 2 row 1: ab:de vs ab:de → identical patterns, no α terms.
#[test]
fn row1_identical_patterns() {
    let q = two_block_query(("ab", "de"), ("ab", "de"));
    assert!(alpha_strings(&q, 0).is_empty());
    assert!(alpha_strings(&q, 1).is_empty());
}

/// Table 2 row 2: ab:de vs ab:def → α1 = f=∅, α2 = f≠∅.
#[test]
fn row2_one_secondary() {
    let q = two_block_query(("ab", "de"), ("ab", "def"));
    assert_eq!(alpha_strings(&q, 0), vec!["f=∅"]);
    assert_eq!(alpha_strings(&q, 1), vec!["f≠∅"]);
}

/// Table 2 row 3: ab:de vs abc:def → α1 = c=∅ ∧ f=∅, α2 = c≠∅ ∧ f≠∅.
#[test]
fn row3_two_secondaries_same_block() {
    let q = two_block_query(("ab", "de"), ("abc", "def"));
    assert_eq!(alpha_strings(&q, 0), vec!["c=∅", "f=∅"]);
    assert_eq!(alpha_strings(&q, 1), vec!["c≠∅", "f≠∅"]);
}

/// Table 2 row 4: abc:de vs ab:def → α1 = c≠∅ ∧ f=∅, α2 = c=∅ ∧ f≠∅.
#[test]
fn row4_crossed_secondaries() {
    let q = two_block_query(("abc", "de"), ("ab", "def"));
    assert_eq!(alpha_strings(&q, 0), vec!["c≠∅", "f=∅"]);
    assert_eq!(alpha_strings(&q, 1), vec!["c=∅", "f≠∅"]);
}

/// Table 2 row 5: abc:de vs ab:defg → α1 = c≠∅ ∧ f=∅ ∧ g=∅,
/// α2 = c=∅ ∧ f≠∅ ∧ g≠∅.
#[test]
fn row5_three_secondaries() {
    let q = two_block_query(("abc", "de"), ("ab", "defg"));
    assert_eq!(alpha_strings(&q, 0), vec!["c≠∅", "f=∅", "g=∅"]);
    assert_eq!(alpha_strings(&q, 1), vec!["c=∅", "f≠∅", "g≠∅"]);
}

/// The composite property layout of row 5: composite GP' = ab(c) : de(fg).
#[test]
fn row5_composite_layout() {
    let q = two_block_query(("abc", "de"), ("ab", "defg"));
    let aq = extract(&parse_query(&q).unwrap()).unwrap();
    let CompositeOutcome::Composite(c) = build_composite(&aq.blocks).unwrap() else {
        panic!("row 5 composes");
    };
    // Star s: primary {a, b}, secondary {c}.
    assert_eq!(c.stars[0].primary.len(), 2);
    assert_eq!(c.stars[0].secondary.len(), 1);
    // Star t: primary {d, e, j}, secondary {f, g} (j is the joining
    // property shared by both blocks).
    assert_eq!(c.stars[1].primary.len(), 3);
    assert_eq!(c.stars[1].secondary.len(), 2);
}
