//! §5.2 MR-cycle counts as executable tests: the compiled plans of the four
//! engines must spend the number of MapReduce cycles the paper reports.
//!
//! Where we intentionally differ: the paper's Hive (MQO) counts appear not
//! to include the final map-only join that its other counts include; we
//! count every cycle uniformly, so MQO lands one above the paper's figure.

use rapida::core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida::core::{extract, DataCatalog, QueryEngine};
use rapida::datagen::{generate_bsbm, generate_chem, query, BsbmConfig, ChemConfig};
use rapida::sparql::parse_query;

fn plan_cycles(cat: &DataCatalog, id: &str) -> [usize; 4] {
    let q = query(id);
    let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
    let engines: [Box<dyn QueryEngine>; 4] = [
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    let mut out = [0usize; 4];
    for (i, e) in engines.iter().enumerate() {
        out[i] = e.plan(&aq, cat).unwrap().cycles();
    }
    out
}

#[test]
fn bsbm_cycle_counts() {
    let cat = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));

    // §5.2 "Varying Structure of Groupings": Hive needs 4 cycles for G1–G4,
    // RAPIDAnalytics 2.
    for id in ["G1", "G2", "G3", "G4"] {
        let [hive, _mqo, _rp, ra] = plan_cycles(&cat, id);
        assert_eq!(hive, 4, "{id}: Hive = 4 cycles (paper)");
        assert_eq!(ra, 2, "{id}: RAPIDAnalytics = 2 cycles (paper)");
    }

    // §5.2 "Multiple Grouping-Aggregation Constraints", MG1–MG2:
    // 9 / 7 / 5 / 3 (MQO: see module docs).
    for id in ["MG1", "MG2"] {
        let [hive, mqo, rp, ra] = plan_cycles(&cat, id);
        assert_eq!(hive, 9, "{id}: naive Hive = 9 (paper)");
        assert_eq!(mqo, 8, "{id}: Hive MQO = paper's 7 + the final map-only join");
        assert_eq!(rp, 5, "{id}: RAPID+ = 5 (paper)");
        assert_eq!(ra, 3, "{id}: RAPIDAnalytics = 3 (paper)");
    }

    // MG3–MG4: 11 / 8 / 7 / 4.
    for id in ["MG3", "MG4"] {
        let [hive, mqo, rp, ra] = plan_cycles(&cat, id);
        assert_eq!(hive, 11, "{id}: naive Hive = 11 (paper)");
        assert_eq!(mqo, 9, "{id}: Hive MQO = paper's 8 + the final map-only join");
        assert_eq!(rp, 7, "{id}: RAPID+ = 7 (paper)");
        assert_eq!(ra, 4, "{id}: RAPIDAnalytics = 4 (paper)");
    }
}

#[test]
fn chem_mg6_cycle_counts() {
    let cat = DataCatalog::load(&generate_chem(&ChemConfig::tiny()));
    // §5.2 "Real-world RDF Analytics": MG6 takes 13 cycles on naive Hive,
    // 8 on MQO, 7 on RAPID+ and 4 on RAPIDAnalytics.
    let [hive, mqo, rp, ra] = plan_cycles(&cat, "MG6");
    assert_eq!(hive, 13, "MG6: naive Hive = 13 (paper)");
    assert_eq!(
        mqo, 8,
        "MG6: identical blocks skip MQO extraction — 7 cycles + the final map-only join"
    );
    assert_eq!(rp, 7, "MG6: RAPID+ = 7 (paper)");
    assert_eq!(ra, 4, "MG6: RAPIDAnalytics = 4 (paper)");
}

#[test]
fn map_only_cycles_reported() {
    // The paper reports "13 MR cycles (11 map-only)" for MG6 on Hive: with
    // the chem dataset's small VP tables most joins become map-joins.
    let cat = DataCatalog::load(&generate_chem(&ChemConfig::tiny()));
    let q = query("MG6");
    let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
    let plan = HiveNaive::default().plan(&aq, &cat).unwrap();
    assert_eq!(plan.cycles(), 13);
    assert_eq!(
        plan.map_only_cycles(),
        11,
        "paper: 11 of MG6's 13 Hive cycles are map-only"
    );
}

/// The full Fig. 8 matrix, pinned exactly: every (query, engine) pair's
/// compiled cycle count. A planner change that moves any cell fails here
/// loudly, with the whole row in the message — the cheap early-warning
/// tripwire in front of the (slow) executed-agreement tests.
#[test]
fn fig8_exact_cycle_matrix() {
    let bsbm = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));
    let chem = DataCatalog::load(&generate_chem(&ChemConfig::tiny()));

    // (query, [Hive naive, Hive MQO, RAPID+, RAPIDAnalytics]).
    // MQO counts include the final map-only join (module docs).
    let bsbm_expected = [
        ("G1", [4, 4, 2, 2]),
        ("G2", [4, 4, 2, 2]),
        ("G3", [4, 4, 2, 2]),
        ("G4", [4, 4, 2, 2]),
        ("MG1", [9, 8, 5, 3]),
        ("MG2", [9, 8, 5, 3]),
        ("MG3", [11, 9, 7, 4]),
        ("MG4", [11, 9, 7, 4]),
    ];
    for (id, expected) in bsbm_expected {
        let got = plan_cycles(&bsbm, id);
        assert_eq!(
            got, expected,
            "{id}: cycles [naive, MQO, RAPID+, RAPIDA] drifted from the pinned Fig. 8 plan"
        );
    }
    let got = plan_cycles(&chem, "MG6");
    assert_eq!(
        got,
        [13, 8, 7, 4],
        "MG6: cycles [naive, MQO, RAPID+, RAPIDA] drifted from the pinned Fig. 8 plan"
    );
}
