//! Worker-count determinism matrix over the full Fig. 8 query × engine
//! grid: with the work-stealing task pool and the shard-parallel reduce
//! merge in the engine, every (query, engine) pair must produce
//! byte-identical DFS output, identical committed data-flow metrics, and an
//! identical simulated cluster cost at 1, 2, 4 and 8 workers — fault-free.
//!
//! This is the acceptance gate for the parallel execution layer: the worker
//! count may only change *wall-clock* behavior (busy-time makespans,
//! steals, shard counts), never anything the paper's plan-quality claims
//! are measured on.

use rapida::core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida::core::{extract, AnalyticalQuery, DataCatalog, QueryEngine};
use rapida::datagen::{generate_bsbm, generate_chem, query, BsbmConfig, ChemConfig};
use rapida::mapred::{ClusterModel, Engine as MrEngine, WorkflowMetrics};
use rapida::sparql::parse_query;

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn engines() -> Vec<Box<dyn QueryEngine>> {
    vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ]
}

/// What a run observes: output block bytes plus committed per-job data-flow
/// counters (same signature shape as `chaos_fig8.rs`; job names excluded —
/// they embed per-plan ids that differ between plan instances).
type RunSignature = (Vec<Vec<u8>>, Vec<(bool, usize, usize, [u64; 8])>);

fn committed(wf: &WorkflowMetrics) -> Vec<(bool, usize, usize, [u64; 8])> {
    wf.jobs
        .iter()
        .map(|m| {
            (
                m.map_only,
                m.map_tasks,
                m.reduce_tasks,
                [
                    m.input_bytes,
                    m.input_records,
                    m.map_output_records,
                    m.map_output_bytes,
                    m.shuffle_records,
                    m.shuffle_bytes,
                    m.output_records,
                    m.output_bytes,
                ],
            )
        })
        .collect()
}

/// Plan + execute one (query, engine) pair fault-free at a worker count.
fn run_one(
    cat: &DataCatalog,
    aq: &AnalyticalQuery,
    engine: &dyn QueryEngine,
    workers: usize,
) -> (RunSignature, WorkflowMetrics) {
    let mr = MrEngine::with_workers(cat.dfs.clone(), workers);
    let plan = engine
        .plan(aq, cat)
        .unwrap_or_else(|e| panic!("{} failed to plan: {e}", engine.name()));
    let (_rel, wf) = plan.execute(&mr, aq, &cat.dict);
    let blocks: Vec<Vec<u8>> = cat
        .dfs
        .get(&plan.output_dataset)
        .map(|ds| ds.blocks.iter().map(|b| b.as_ref().to_vec()).collect())
        .unwrap_or_default();
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    ((blocks, committed(&wf)), wf)
}

/// Sweep one catalog's queries across the worker matrix on all engines.
fn scale_matrix(cat: &DataCatalog, ids: &[&str]) {
    let model = ClusterModel::nodes10();
    for id in ids {
        let q = query(id);
        let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
        for engine in engines() {
            let (golden, golden_wf) = run_one(cat, &aq, engine.as_ref(), 1);
            assert!(
                !golden.0.is_empty() || golden_wf.jobs.is_empty(),
                "{id}/{}: 1-worker golden run produced no output blocks",
                engine.name()
            );
            let golden_cost = model.workflow_time(&golden_wf);
            for &workers in &WORKER_MATRIX[1..] {
                let (got, wf) = run_one(cat, &aq, engine.as_ref(), workers);
                assert_eq!(
                    got,
                    golden,
                    "{id}/{}: {workers}-worker run diverged from the 1-worker golden",
                    engine.name()
                );
                // The simulated cost consumes only data-flow and attempt
                // counters — never busy times, steals or shard counts — so
                // it must be exactly equal, not merely close.
                assert_eq!(
                    model.workflow_time(&wf),
                    golden_cost,
                    "{id}/{}: simulated cost drifted at {workers} workers",
                    engine.name()
                );
                // Fault-free: the attempt ledger stays at one per task.
                assert_eq!(wf.total_retried_attempts(), 0);
                assert_eq!(wf.total_speculative_attempts(), 0);
            }
        }
    }
}

#[test]
fn bsbm_g_queries_are_worker_count_invariant() {
    let cat = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));
    scale_matrix(&cat, &["G1", "G2", "G3", "G4"]);
}

#[test]
fn bsbm_mg_queries_are_worker_count_invariant() {
    let cat = DataCatalog::load(&generate_bsbm(&BsbmConfig::tiny()));
    scale_matrix(&cat, &["MG1", "MG2", "MG3", "MG4"]);
}

#[test]
fn chem_mg6_is_worker_count_invariant() {
    let cat = DataCatalog::load(&generate_chem(&ChemConfig::tiny()));
    scale_matrix(&cat, &["MG6"]);
}
