//! Integration tests for the `rapida` command-line front end, driving the
//! compiled binary.

use std::process::Command;

fn rapida() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rapida"))
}

#[test]
fn catalog_lists_all_queries() {
    let out = rapida().arg("catalog").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in ["G1", "G9", "MG1", "MG18"] {
        assert!(text.contains(id), "catalog must list {id}");
    }
}

#[test]
fn run_over_ntriples_file() {
    let dir = std::env::temp_dir().join("rapida_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("d.nt");
    let query = dir.join("q.rq");
    std::fs::write(
        &data,
        "<http://x/p1> <http://x/f> <http://x/featA> .\n\
         <http://x/o1> <http://x/pr> <http://x/p1> .\n\
         <http://x/o1> <http://x/pc> \"5\" .\n\
         <http://x/o2> <http://x/pr> <http://x/p1> .\n\
         <http://x/o2> <http://x/pc> \"7\" .\n",
    )
    .unwrap();
    std::fs::write(
        &query,
        "PREFIX ex: <http://x/>\n\
         SELECT ?f (COUNT(?pr) AS ?n) { ?p ex:f ?f . ?o ex:pr ?p ; ex:pc ?pr . } GROUP BY ?f",
    )
    .unwrap();
    let out = rapida()
        .args([
            "run",
            "--engine",
            "ra",
            "--data",
            data.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("featA"));
    assert!(stdout.contains('2'), "count of 2 offers");
}

#[test]
fn explain_prints_cycles() {
    // Use a file-based dataset to keep this test fast (the built-in
    // datasets generate tens of thousands of triples).
    let dir = std::env::temp_dir().join("rapida_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("d.nt");
    let query = dir.join("q.rq");
    std::fs::write(&data, "<http://x/o1> <http://x/pc> \"5\" .\n").unwrap();
    std::fs::write(
        &query,
        "PREFIX ex: <http://x/>\nSELECT (COUNT(?pr) AS ?n) { ?o ex:pc ?pr . }",
    )
    .unwrap();
    let out = rapida()
        .args([
            "explain",
            "--engine",
            "all",
            "--data",
            data.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Hive (Naive) plan"));
    assert!(stdout.contains("RAPIDAnalytics plan"));
    assert!(stdout.contains("MR1"));
}

#[test]
fn bad_arguments_exit_nonzero() {
    let out = rapida().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let out = rapida()
        .args(["run", "--dataset", "nosuch"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn serve_reports_both_modes() {
    let out = rapida()
        .args(["serve", "--clients", "2", "--duration-ms", "120", "--seed", "7"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("batched mode:"), "{stdout}");
    assert!(stdout.contains("window"), "{stdout}");

    let out = rapida()
        .args([
            "serve",
            "--mode",
            "serial",
            "--clients",
            "2",
            "--duration-ms",
            "120",
            "--seed",
            "7",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("serial mode:"), "{stdout}");

    let out = rapida()
        .args(["serve", "--mode", "nosuch"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
