//! Byte-identity oracle for the ExtVP layer over the full Fig. 8 query ×
//! engine matrix: a catalog loaded with ExtVP semi-join reductions (and the
//! compilers substituting them for full VP scans / gating triplegroup scans
//! on their subject sets) must produce the exact output bytes of a catalog
//! loaded without them — while never reading or shuffling *more*.
//!
//! This is the acceptance gate for the reduction machinery: ExtVP is a
//! pure scan-side optimization, so the only observable differences are the
//! data-flow counters shrinking, never the answer.

use rapida::core::engines::{HiveMqo, HiveNaive, RapidAnalytics, RapidPlus};
use rapida::core::{extract, AnalyticalQuery, DataCatalog, LoadConfig, QueryEngine};
use rapida::datagen::{generate_bsbm, generate_chem, query, BsbmConfig, ChemConfig};
use rapida::mapred::{Engine as MrEngine, FaultPlan, WorkflowMetrics};
use rapida::rdf::Graph;
use rapida::sparql::parse_query;
use rapida_testkit::chaos::ChaosConfig;

fn engines() -> Vec<Box<dyn QueryEngine>> {
    vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ]
}

/// The two catalogs under comparison, loaded from one graph.
fn catalog_pair(graph: &Graph) -> (DataCatalog, DataCatalog) {
    let on = DataCatalog::load(graph); // ExtVP on by default
    let off = DataCatalog::load_with(
        graph,
        LoadConfig {
            extvp: false,
            ..LoadConfig::default()
        },
    );
    assert!(
        !on.vp.ext_tables().is_empty(),
        "ExtVP-on catalog materialized no reductions — the oracle would be vacuous"
    );
    assert!(off.vp.ext_tables().is_empty());
    (on, off)
}

/// Plan + execute one (query, engine) pair, returning the output dataset's
/// exact block bytes, the plan's cycle count, and the run metrics.
fn run_one(
    cat: &DataCatalog,
    aq: &AnalyticalQuery,
    engine: &dyn QueryEngine,
    fault_seed: Option<u64>,
) -> (Vec<Vec<u8>>, usize, WorkflowMetrics) {
    let mut mr = MrEngine::with_workers(cat.dfs.clone(), 4);
    mr.faults = fault_seed.map(FaultPlan::chaotic);
    let plan = engine
        .plan(aq, cat)
        .unwrap_or_else(|e| panic!("{} failed to plan: {e}", engine.name()));
    let cycles = plan.cycles();
    let (_rel, wf) = plan.execute(&mr, aq, &cat.dict);
    let blocks: Vec<Vec<u8>> = cat
        .dfs
        .get(&plan.output_dataset)
        .map(|ds| ds.blocks.iter().map(|b| b.as_ref().to_vec()).collect())
        .unwrap_or_default();
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    (blocks, cycles, wf)
}

/// Sweep the query list on all four engines over both catalogs. Returns the
/// number of (query, engine) pairs where ExtVP strictly shrank the data
/// flow (input or shuffle side).
fn identity_matrix(on: &DataCatalog, off: &DataCatalog, ids: &[&str]) -> usize {
    let mut strict = 0;
    for id in ids {
        let q = query(id);
        let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
        for engine in engines() {
            let (golden, base_cycles, base_wf) = run_one(off, &aq, engine.as_ref(), None);
            let (got, cycles, wf) = run_one(on, &aq, engine.as_ref(), None);
            assert!(
                !golden.is_empty() || base_wf.jobs.is_empty(),
                "{id}/{}: full-scan golden run produced no output blocks",
                engine.name()
            );
            assert_eq!(
                got,
                golden,
                "{id}/{}: ExtVP run diverged from the full-scan golden",
                engine.name()
            );
            // Substitution swaps datasets, never plan shape: the paper's
            // pinned cycle counts are ExtVP-invariant on the fixed engines.
            assert_eq!(
                cycles,
                base_cycles,
                "{id}/{}: ExtVP changed the cycle count",
                engine.name()
            );
            // Never-worse: reductions and subject gates only remove work.
            let (in_on, in_off) = (wf.total_input_bytes(), base_wf.total_input_bytes());
            let (sh_on, sh_off) = (wf.total_shuffle_bytes(), base_wf.total_shuffle_bytes());
            assert!(
                in_on <= in_off,
                "{id}/{}: ExtVP read more ({in_on} > {in_off} input bytes)",
                engine.name()
            );
            assert!(
                sh_on <= sh_off,
                "{id}/{}: ExtVP shuffled more ({sh_on} > {sh_off} bytes)",
                engine.name()
            );
            if in_on < in_off || sh_on < sh_off {
                strict += 1;
            }
        }
    }
    strict
}

#[test]
fn bsbm_g_queries_are_extvp_invariant() {
    let (on, off) = catalog_pair(&generate_bsbm(&BsbmConfig::tiny()));
    identity_matrix(&on, &off, &["G1", "G2", "G3", "G4"]);
}

#[test]
fn bsbm_mg_queries_are_extvp_invariant_and_cheaper() {
    let (on, off) = catalog_pair(&generate_bsbm(&BsbmConfig::tiny()));
    let strict = identity_matrix(&on, &off, &["MG1", "MG2", "MG3", "MG4"]);
    assert!(
        strict > 0,
        "no MG (query, engine) pair saw a strict data-flow reduction — \
         substitution never fired"
    );
}

#[test]
fn chem_mg6_is_extvp_invariant() {
    let (on, off) = catalog_pair(&generate_chem(&ChemConfig::tiny()));
    identity_matrix(&on, &off, &["MG6"]);
}

/// Chaos leg: the ExtVP-substituted plans must also recover byte-identically
/// from injected failures, stragglers and node loss — against the *full
/// scan* fault-free golden, so fault recovery and substitution are pinned
/// together.
#[test]
fn extvp_plans_survive_chaos_byte_identically() {
    let (on, off) = catalog_pair(&generate_bsbm(&BsbmConfig::tiny()));
    let q = query("MG2");
    let aq = extract(&parse_query(&q.sparql).unwrap()).unwrap();
    let mut cfg = ChaosConfig::from_env();
    cfg.seeds.truncate(2);
    let mut injected = 0u64;
    for engine in engines() {
        let (golden, _, _) = run_one(&off, &aq, engine.as_ref(), None);
        for &seed in &cfg.seeds {
            let (got, _, wf) = run_one(&on, &aq, engine.as_ref(), Some(seed));
            assert_eq!(
                got,
                golden,
                "MG2/{}: faulted ExtVP run diverged from the full-scan golden",
                engine.name()
            );
            injected += wf.total_retried_attempts() + wf.total_speculative_attempts();
        }
    }
    assert!(
        injected > 0,
        "chaotic sweep injected nothing across the faulted runs"
    );
}
