//! Plan-choice properties: on random graphs and all analytical query
//! templates, the cost-based enumerator's chosen plan (a) is never worse
//! than the family's fixed plans under the *measured* simulated cost, and
//! (b) produces a byte-identical canonical Relation — the fixed plan is the
//! correctness oracle.

use rapida::core::{enumerate_best, Family};
use rapida::prelude::*;
use rapida::rdf::vocab;
use rapida_testkit::prelude::*;

fn iri(s: String) -> Term {
    Term::iri(format!("http://x/{s}"))
}

/// Same two-class random graph family as `property_agreement.rs`: typed X
/// subjects with multi-valued `pa`/`pb`, and L subjects linking to X with a
/// numeric `pc`.
#[derive(Debug, Clone)]
struct RandomGraph {
    xs: Vec<(u8, Vec<u8>, Vec<u8>)>,
    ls: Vec<(u8, u8, Option<u8>)>,
}

impl RandomGraph {
    fn build(&self) -> Graph {
        let mut g = Graph::new();
        let n_x = self.xs.len().max(1) as u8;
        for (i, (ty, pas, pbs)) in self.xs.iter().enumerate() {
            let s = iri(format!("x{i}"));
            g.insert_terms(
                &s,
                &Term::iri(vocab::RDF_TYPE),
                &iri(format!("T{}", ty % 2)),
            );
            for a in pas {
                g.insert_terms(&s, &iri("pa".into()), &iri(format!("a{}", a % 4)));
            }
            for b in pbs {
                g.insert_terms(&s, &iri("pb".into()), &iri(format!("b{}", b % 3)));
            }
        }
        for (i, (x, pc, pd)) in self.ls.iter().enumerate() {
            let s = iri(format!("l{i}"));
            g.insert_terms(&s, &iri("lx".into()), &iri(format!("x{}", x % n_x)));
            g.insert_terms(&s, &iri("pc".into()), &Term::integer(i64::from(*pc % 20)));
            if let Some(d) = pd {
                g.insert_terms(&s, &iri("pd".into()), &iri(format!("d{}", d % 3)));
            }
        }
        g
    }
}

fn random_graph() -> impl Strategy<Value = RandomGraph> {
    let x = (
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..3),
        prop::collection::vec(any::<u8>(), 0..3),
    );
    let l = (any::<u8>(), any::<u8>(), prop::option::of(any::<u8>()));
    (
        prop::collection::vec(x, 1..8),
        prop::collection::vec(l, 0..12),
    )
        .prop_map(|(xs, ls)| RandomGraph { xs, ls })
}

const P: &str = "PREFIX ex: <http://x/>\n";

fn templates() -> Vec<(&'static str, String)> {
    vec![
        (
            "overlapping multi-block",
            format!(
                "{P}SELECT ?a ?n1 ?s1 ?n2 {{
                   {{ SELECT ?a (COUNT(?c) AS ?n1) (SUM(?c) AS ?s1)
                      {{ ?x a ex:T0 ; ex:pa ?a . ?l ex:lx ?x ; ex:pc ?c . }} GROUP BY ?a }}
                   {{ SELECT (COUNT(?c2) AS ?n2)
                      {{ ?x2 a ex:T0 . ?l2 ex:lx ?x2 ; ex:pc ?c2 . }} }}
                 }}"
            ),
        ),
        (
            "shared group key",
            format!(
                "{P}SELECT ?a ?nb ?na {{
                   {{ SELECT ?a (COUNT(?c) AS ?nb)
                      {{ ?x a ex:T1 ; ex:pa ?a ; ex:pb ?b . ?l ex:lx ?x ; ex:pc ?c . }}
                      GROUP BY ?a }}
                   {{ SELECT ?a (COUNT(?c2) AS ?na)
                      {{ ?x2 a ex:T1 ; ex:pa ?a . ?l2 ex:lx ?x2 ; ex:pc ?c2 . }}
                      GROUP BY ?a }}
                 }}"
            ),
        ),
        (
            "filtered single block",
            format!(
                "{P}SELECT ?a (COUNT(?c) AS ?n) (MAX(?c) AS ?hi) {{
                   ?x ex:pa ?a . ?l ex:lx ?x ; ex:pc ?c . FILTER(?c >= 5)
                 }} GROUP BY ?a"
            ),
        ),
        (
            "non-overlapping fallback",
            format!(
                "{P}SELECT ?n1 ?n2 {{
                   {{ SELECT (COUNT(?b) AS ?n1) {{ ?x ex:pa ?a ; ex:pb ?b . }} }}
                   {{ SELECT (COUNT(?d) AS ?n2) {{ ?l ex:pc ?c ; ex:pd ?d . }} }}
                 }}"
            ),
        ),
    ]
}

/// Measured simulated cost of a fixed engine's plan, plus its canonical
/// result — the oracle the chosen plan is compared against.
fn run_fixed(
    engine: &dyn QueryEngine,
    aq: &rapida::core::AnalyticalQuery,
    cat: &DataCatalog,
    model: &ClusterModel,
) -> (f64, Vec<String>) {
    let mr = MrEngine::pinned(cat.dfs.clone());
    let plan = engine.plan(aq, cat).unwrap();
    let (rel, wf) = plan.execute(&mr, aq, &cat.dict);
    let cost = model.workflow_time(&wf);
    plan.cleanup(&cat.dfs);
    cat.dfs.remove(&plan.output_dataset);
    (cost, rel.canonicalized(&cat.dict))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// The never-worse invariant: for every family, the enumerator-chosen
    /// plan's measured cost on the pinned simulator is at most the measured
    /// cost of each of that family's fixed plans, and its output Relation is
    /// byte-identical to the fixed plan's.
    #[test]
    fn chosen_plan_never_worse_and_byte_identical(
        rg in random_graph(),
        template_idx in 0usize..4,
    ) {
        let g = rg.build();
        let (label, sparql) = &templates()[template_idx];
        let query = parse_query(sparql).unwrap();
        let aq = extract(&query).unwrap();
        let cat = DataCatalog::load(&g);
        let model = ClusterModel::nodes10();

        let fixed: Vec<(Family, Vec<Box<dyn QueryEngine>>)> = vec![
            (
                Family::Hive,
                vec![Box::new(HiveNaive::default()), Box::new(HiveMqo::default())],
            ),
            (
                Family::Rapid,
                vec![Box::new(RapidPlus::default()), Box::new(RapidAnalytics::default())],
            ),
        ];
        for (family, engines) in fixed {
            let e = enumerate_best(family, &aq, &cat, &model).unwrap();
            prop_assert!(e.measured_s.is_finite());

            let mr = MrEngine::pinned(cat.dfs.clone());
            let (chosen_rel, chosen_wf) = e.plan.execute(&mr, &aq, &cat.dict);
            let chosen_cost = model.workflow_time(&chosen_wf);
            let chosen_canon = chosen_rel.canonicalized(&cat.dict);
            e.plan.cleanup(&cat.dfs);
            cat.dfs.remove(&e.plan.output_dataset);

            // The freshly recompiled winner re-measures at its dry-run cost.
            prop_assert!(
                (chosen_cost - e.measured_s).abs() <= 1e-6 * e.measured_s.max(1.0),
                "template '{}' {:?}: fresh run {:.4}s != dry-run {:.4}s",
                label, family, chosen_cost, e.measured_s
            );

            for engine in &engines {
                let (fixed_cost, oracle) = run_fixed(engine.as_ref(), &aq, &cat, &model);
                prop_assert!(
                    chosen_cost <= fixed_cost + 1e-9,
                    "template '{}': chosen '{}' at {:.4}s worse than fixed {} at {:.4}s",
                    label, e.choice, chosen_cost, engine.name(), fixed_cost
                );
                prop_assert_eq!(
                    chosen_canon.clone(),
                    oracle,
                    "template '{}': chosen '{}' output differs from fixed {}",
                    label, e.choice, engine.name()
                );
            }
        }
    }

    /// Determinism under the estimator: re-enumerating the same inputs picks
    /// the same candidate with the same estimate.
    #[test]
    fn enumeration_is_stable_on_random_graphs(rg in random_graph()) {
        let g = rg.build();
        let (_, sparql) = &templates()[0];
        let query = parse_query(sparql).unwrap();
        let aq = extract(&query).unwrap();
        let cat = DataCatalog::load(&g);
        let model = ClusterModel::nodes10();
        for family in [Family::Hive, Family::Rapid] {
            let a = enumerate_best(family, &aq, &cat, &model).unwrap();
            let b = enumerate_best(family, &aq, &cat, &model).unwrap();
            prop_assert_eq!(&a.choice, &b.choice);
            prop_assert_eq!(a.estimated_s, b.estimated_s);
            prop_assert_eq!(a.measured_s, b.measured_s);
            prop_assert_eq!(a.plan.dump(), b.plan.dump());
        }
    }
}
