//! Figure 3 of the paper as an executable test: the AQ2 graph patterns
//! overlap; the AQ3 graph patterns do not (object-subject vs object-object
//! join structures).

use rapida::core::{graphs_overlap, stars_overlap};
use rapida::sparql::analysis::decompose;
use rapida::sparql::{parse_query, TriplePattern};

fn bgp(q: &str) -> Vec<TriplePattern> {
    parse_query(q)
        .unwrap()
        .select
        .pattern
        .triples()
        .into_iter()
        .cloned()
        .collect()
}

const P: &str = "PREFIX ex: <http://x/>\n";

#[test]
fn aq2_gp1_overlaps_gp2() {
    let gp1 = decompose(&bgp(&format!(
        "{P}SELECT ?s1 {{ ?s1 a ex:PT18 . ?s2 ex:pr ?s1 ; ex:pc ?o1 ; ex:ve ?o2 . }}"
    )))
    .unwrap();
    let gp2 = decompose(&bgp(&format!(
        "{P}SELECT ?s1 {{ ?s1 a ex:PT18 ; ex:pf ?o3 . ?s2 ex:pr ?s1 ; ex:pc ?o4 . }}"
    )))
    .unwrap();

    // Star-level overlaps of Fig. 3: {ty} and {pr, pc}.
    assert!(stars_overlap(&gp1.stars[0], &gp2.stars[0]));
    assert!(stars_overlap(&gp1.stars[1], &gp2.stars[1]));

    // Graph-level overlap with the identity mapping.
    let ov = graphs_overlap(&gp1, &gp2).expect("AQ2 overlaps");
    assert_eq!(ov.mapping, vec![0, 1]);
}

#[test]
fn aq3_gp1_does_not_overlap_gp2() {
    let gp1 = decompose(&bgp(&format!(
        "{P}SELECT ?s3 {{ ?s3 ex:pr ?s1 ; ex:pc ?o5 ; ex:ve ?s4 . ?s4 ex:cn ?o6 . }}"
    )))
    .unwrap();
    let gp2 = decompose(&bgp(&format!(
        "{P}SELECT ?s3 {{ ?s3 ex:pr ?s1 ; ex:pc ?o5 ; ex:ve ?o6 . ?s4 ex:cn ?o6 . }}"
    )))
    .unwrap();

    // Both star pairs overlap individually (property sets intersect) …
    assert!(stars_overlap(&gp1.stars[0], &gp2.stars[0]));
    assert!(stars_overlap(&gp1.stars[1], &gp2.stars[1]));
    // … but the join structures disagree (object-subject vs object-object),
    // so Def 3.2 rejects the pair — exactly Fig. 3's verdict.
    assert!(graphs_overlap(&gp1, &gp2).is_none());
}

#[test]
fn aq2_composite_has_pf_and_ve_secondary() {
    // Building the composite for the AQ2 pair through the analytical IR:
    // props(Stp'_a) = { ty18, pf }, props(Stp'_b) = { pr, pc, ve } with pf
    // and ve secondary (§3 "Construction of a Composite Graph Pattern").
    let q = format!(
        "{P}SELECT ?s1cnt ?s2cnt {{
            {{ SELECT (COUNT(?o1) AS ?s1cnt)
               {{ ?s1 a ex:PT18 . ?s2 ex:pr ?s1 ; ex:pc ?o1 ; ex:ve ?o2 . }} }}
            {{ SELECT (COUNT(?o4) AS ?s2cnt)
               {{ ?t1 a ex:PT18 ; ex:pf ?o3 . ?t2 ex:pr ?t1 ; ex:pc ?o4 . }} }}
        }}"
    );
    let aq = rapida::core::extract(&parse_query(&q).unwrap()).unwrap();
    match rapida::core::build_composite(&aq.blocks).unwrap() {
        rapida::core::CompositeOutcome::Composite(c) => {
            assert_eq!(c.stars.len(), 2);
            let star_a = &c.stars[0];
            assert_eq!(star_a.primary.len(), 1, "P_prim = {{ty18}}");
            assert!(star_a.primary[0].is_type_key());
            assert_eq!(star_a.secondary.len(), 1, "P_sec = {{pf}}");
            let star_b = &c.stars[1];
            assert_eq!(star_b.primary.len(), 2, "P_prim = {{pr, pc}}");
            assert_eq!(star_b.secondary.len(), 1, "P_sec = {{ve}}");
        }
        other => panic!("AQ2 must compose, got {other:?}"),
    }
}
