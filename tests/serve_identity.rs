//! Per-tenant identity of the batched serving path (ISSUE 10 property
//! suite): whatever sharing the front end performs — window batching,
//! signature dedup, MQO fusion, scan-cache reuse — every client must
//! receive exactly the rows a solo run of its own query would produce.
//!
//! Three pins:
//!
//! 1. **Random batches × catalog templates** — random multisets of Fig. 8
//!    traffic templates at random arrival times; every completed request's
//!    relation must canonicalize identically to the solo Hive (MQO) run.
//! 2. **Chaos isolation** — the same identity under injected mid-batch
//!    faults: a request either completes with the solo-identical relation
//!    or is rejected whole; a fault in one tenant's jobs never leaks
//!    partial or foreign rows into another tenant's result.
//! 3. **Replay determinism** — two fresh servers draining identical
//!    traffic (with a cache budget small enough to force LRU evictions)
//!    produce equal ledgers *and* canonically equal per-request results.

use rapida_core::engines::HiveMqo;
use rapida_core::{extract, DataCatalog, QueryEngine};
use rapida_datagen::{generate_bsbm, generate_traffic, query, BsbmConfig, TrafficConfig};
use rapida_mapred::Engine;
use rapida_rdf::Graph;
use rapida_serve::{RequestStatus, ServeConfig, ServeReport, Server};
use rapida_sparql::parse_query;
use rapida_testkit::rng::StdRng;
use std::collections::BTreeMap;

/// The templates the serving traffic mix draws from (a Fig. 8 subset that
/// spans single- and multi-grouping queries plus fusable cross-template
/// pairs like MG1+G1 / MG2+G2).
const TEMPLATES: [&str; 6] = ["MG1", "MG2", "MG3", "MG4", "G1", "G2"];

fn tiny() -> Graph {
    generate_bsbm(&BsbmConfig::tiny())
}

/// Canonical solo-run reference for every template, computed once per
/// catalog with the same planner the server uses.
fn references(g: &Graph) -> BTreeMap<String, Vec<String>> {
    let cat = DataCatalog::load(g);
    let mr = Engine::pinned(cat.dfs.clone());
    let planner = HiveMqo::default();
    let mut refs = BTreeMap::new();
    for id in TEMPLATES {
        let aq = extract(&parse_query(&query(id).sparql).unwrap()).unwrap();
        let plan = planner.plan(&aq, &cat).unwrap();
        let (rel, _) = plan.execute(&mr, &aq, &cat.dict);
        plan.cleanup(&cat.dfs);
        refs.insert(id.to_string(), rel.canonicalized(&cat.dict));
    }
    refs
}

/// Assert every completed outcome in `report` matches its solo reference.
/// Returns (completed, rejected) counts.
fn assert_identity(
    g: &Graph,
    refs: &BTreeMap<String, Vec<String>>,
    report: &ServeReport,
    label: &str,
) -> (usize, usize) {
    let mut completed = 0;
    let mut rejected = 0;
    for o in &report.outcomes {
        match &o.status {
            RequestStatus::Completed { relation } => {
                completed += 1;
                let expect = &refs[&o.query_id];
                assert_eq!(
                    &relation.canonicalized(&g.dict),
                    expect,
                    "{label}: client {} seq {} ({}) diverged from its solo run",
                    o.client,
                    o.seq,
                    o.query_id
                );
            }
            RequestStatus::Rejected { reason } => {
                rejected += 1;
                assert!(
                    !reason.is_empty(),
                    "{label}: rejection must carry a typed reason"
                );
            }
        }
    }
    (completed, rejected)
}

#[test]
fn random_batches_match_solo_runs() {
    let g = tiny();
    let refs = references(&g);
    let rounds: usize = std::env::var("RAPIDA_SERVE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut rng = StdRng::seed_from_u64(0x5e11_13a7_c4e5_0001);
    for round in 0..rounds {
        let server = Server::new(&g, ServeConfig::default());
        let n: usize = rng.gen_range(3..9usize);
        let mut submitted = 0usize;
        for client in 0..3usize {
            let session = server.session(client);
            for _ in 0..n {
                let id = TEMPLATES[rng.below(TEMPLATES.len() as u64) as usize];
                let at_ms = rng.gen_range(0..300u64);
                session.submit_catalog(at_ms, id);
                submitted += 1;
            }
        }
        let report = server.drain();
        let (completed, rejected) =
            assert_identity(&g, &refs, &report, &format!("round {round}"));
        assert_eq!(completed, submitted, "round {round}: {rejected} rejected");
    }
}

#[test]
fn chaos_mid_batch_faults_do_not_leak_between_tenants() {
    let g = tiny();
    let refs = references(&g);
    let seeds: u64 = std::env::var("RAPIDA_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let events = generate_traffic(&TrafficConfig::bsbm_mix(99, 4, 250));
    let mut total_completed = 0usize;
    for seed in 0..seeds {
        let server = Server::new(
            &g,
            ServeConfig {
                fault_seed: Some(seed),
                ..ServeConfig::default()
            },
        );
        server.enqueue_traffic(&events);
        let report = server.drain();
        let (completed, _) =
            assert_identity(&g, &refs, &report, &format!("chaos seed {seed}"));
        total_completed += completed;
    }
    assert!(
        total_completed > 0,
        "the chaos sweep rejected every request across {seeds} seeds"
    );
}

#[test]
fn replayed_traffic_is_deterministic_down_to_the_eviction_ledger() {
    let g = tiny();
    let events = generate_traffic(&TrafficConfig::bsbm_mix(7, 5, 250));
    let run = || {
        let server = Server::new(
            &g,
            ServeConfig {
                // Small enough to force LRU evictions mid-replay.
                cache_budget_bytes: 4 << 10,
                ..ServeConfig::default()
            },
        );
        server.enqueue_traffic(&events);
        server.drain()
    };
    let a = run();
    let b = run();
    assert!(
        a.ledger.cache.evictions > 0,
        "budget did not force evictions: {:?}",
        a.ledger.cache
    );
    assert_eq!(a.ledger, b.ledger, "replayed metrics ledgers diverged");
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        match (&x.status, &y.status) {
            (
                RequestStatus::Completed { relation: rx },
                RequestStatus::Completed { relation: ry },
            ) => assert_eq!(rx.canonicalized(&g.dict), ry.canonicalized(&g.dict)),
            (RequestStatus::Rejected { reason: rx }, RequestStatus::Rejected { reason: ry }) => {
                assert_eq!(rx, ry)
            }
            _ => panic!(
                "replay flipped completion status for client {} seq {}",
                x.client, x.seq
            ),
        }
    }
}
