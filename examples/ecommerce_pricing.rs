//! The paper's motivating query AQ1 (Fig. 1) end to end: *"for each
//! country, retrieve product features with the highest ratio between price
//! with that feature and price without that feature"* — on generated
//! BSBM-like data, executed with all four engines, with the final ratio
//! computed client-side from the joined aggregates.
//!
//! ```text
//! cargo run --release --example ecommerce_pricing
//! ```

use rapida::prelude::*;
use rapida::sparql::{Cell, Var};

fn main() {
    let graph = rapida::datagen::generate_bsbm(&rapida::datagen::BsbmConfig::small());
    println!("BSBM-like dataset: {} triples", graph.len());
    let cat = DataCatalog::load(&graph);
    let mr = MrEngine::new(cat.dfs.clone());

    // AQ1 as a SPARQL analytical query (MG3 in the evaluated catalog):
    // per-(feature, country) price aggregates joined with per-country
    // aggregates over ALL features.
    let q = rapida::datagen::query("MG3");

    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    let mut last = None;
    for engine in &engines {
        let (result, metrics, _plan) =
            run_query(engine.as_ref(), &q.sparql, &cat, &mr).expect("query runs");
        println!(
            "{:<16} {} cycles, {:>8.2} MB shuffled, {} result rows",
            engine.name(),
            metrics.cycles(),
            metrics.total_shuffle_bytes() as f64 / 1e6,
            result.len()
        );
        last = Some(result);
    }
    let result = last.expect("ran at least one engine");

    // Compute the AQ1 ratio client-side: avg price with the feature vs
    // avg price per country (across all features), per (country, feature).
    let col = |name: &str| result.col(&Var::new(name)).expect("column present");
    let (cf, cc) = (col("f"), col("c"));
    let (sum_f, cnt_f) = (col("sumF"), col("cntF"));
    let (sum_t, cnt_t) = (col("sumT"), col("cntT"));
    let mut best: std::collections::HashMap<String, (String, f64)> = Default::default();
    for row in &result.rows {
        let (Some(sf), Some(nf), Some(st), Some(nt)) = (
            row[sum_f].as_num(&cat.dict),
            row[cnt_f].as_num(&cat.dict),
            row[sum_t].as_num(&cat.dict),
            row[cnt_t].as_num(&cat.dict),
        ) else {
            continue;
        };
        if nf == 0.0 || nt == 0.0 || st == 0.0 {
            continue;
        }
        let ratio = (sf / nf) / (st / nt);
        let country = match row[cc] {
            Cell::Term(id) => cat.dict.lexical(id),
            _ => continue,
        };
        let feature = match row[cf] {
            Cell::Term(id) => cat.dict.lexical(id),
            _ => continue,
        };
        let entry = best.entry(country).or_insert((feature.clone(), ratio));
        if ratio > entry.1 {
            *entry = (feature, ratio);
        }
    }
    println!("\nAQ1: feature with the highest price ratio per country");
    let mut countries: Vec<_> = best.into_iter().collect();
    countries.sort_by(|a, b| a.0.cmp(&b.0));
    for (country, (feature, ratio)) in countries {
        let c = country.rsplit('/').next().unwrap_or(&country);
        let f = feature.rsplit('/').next().unwrap_or(&feature);
        println!("  {c:<12} {f:<12} ratio {ratio:.3}");
    }
}
