//! The paper's future-work direction (§6) implemented: OLAP ROLLUP / CUBE
//! over an RDF graph pattern, evaluated as **one** generalized Agg-Join
//! cycle — price aggregates over the full (feature, country) lattice of the
//! BSBM-like dataset.
//!
//! ```text
//! cargo run --release --example olap_rollup
//! ```

use rapida::core::{extract, rollup_sets, GroupingSetsQuery};
use rapida::prelude::*;
use rapida::sparql::Var;

fn main() {
    let graph = rapida::datagen::generate_bsbm(&rapida::datagen::BsbmConfig::small());
    let cat = DataCatalog::load(&graph);
    let mr = MrEngine::new(cat.dfs.clone());

    // The finest-level grouping as a plain analytical query...
    let base = "
        PREFIX bsbm: <http://bsbm.example.org/v01/>
        SELECT ?f ?c (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
          ?p a bsbm:ProductType1 ; bsbm:productFeature ?f .
          ?o bsbm:product ?p ; bsbm:price ?pr ; bsbm:vendor ?v .
          ?v bsbm:country ?c .
        } GROUP BY ?f ?c";
    let block = extract(&parse_query(base).unwrap()).unwrap().blocks.remove(0);

    // ...rolled up through (feature, country) -> (feature) -> ().
    let q = GroupingSetsQuery {
        sets: rollup_sets(&[Var::new("f"), Var::new("c")]),
        block,
    };
    let plan = q.plan(&cat).expect("plans");
    println!(
        "ROLLUP(feature, country): {} grouping sets in {} MR cycles",
        3,
        plan.cycles()
    );
    let (rel, wf) = plan.execute(&mr);
    println!(
        "{} lattice rows, {:.2} MB shuffled total\n",
        rel.len(),
        wf.total_shuffle_bytes() as f64 / 1e6
    );

    // Show the roll-up levels.
    let set_col = rel.col(&Var::new("__set")).unwrap();
    let cnt_col = rel.col(&Var::new("cnt")).unwrap();
    for (set, label) in [(0.0, "per (feature, country)"), (1.0, "per feature"), (2.0, "ALL")] {
        let rows: Vec<_> = rel
            .rows
            .iter()
            .filter(|r| r[set_col] == Cell::Num(set))
            .collect();
        let total: f64 = rows
            .iter()
            .filter_map(|r| r[cnt_col].as_num(&cat.dict))
            .sum();
        println!(
            "  level {label:<24} {:>5} groups, {:>8} offers counted",
            rows.len(),
            total
        );
    }
    println!("\nevery level carries the same offer total — the lattice is consistent");
}
