//! Chemogenomics analytics (the paper's Chem2Bio2RDF case studies, §5.1):
//! compare per-(compound, gene) bioassay counts with per-compound totals
//! (query MG6, adopted from disease-specific drug discovery), and run the
//! single-grouping Dexamethasone query G5.
//!
//! ```text
//! cargo run --release --example drug_discovery
//! ```

use rapida::prelude::*;
use rapida::sparql::Var;

fn main() {
    let graph = rapida::datagen::generate_chem(&rapida::datagen::ChemConfig::default());
    println!("Chem2Bio2RDF-like dataset: {} triples", graph.len());
    let cat = DataCatalog::load(&graph);
    let mr = MrEngine::new(cat.dfs.clone());
    let engine = RapidAnalytics::default();

    // G5: drug-like compounds sharing targets with Dexamethasone.
    let g5 = rapida::datagen::query("G5");
    let (result, metrics, _) = run_query(&engine, &g5.sparql, &cat, &mr).expect("G5 runs");
    println!(
        "\nG5 (targets shared with Dexamethasone): {} compounds, {} cycles",
        result.len(),
        metrics.cycles()
    );
    let mut rows = result.rows.clone();
    let n_col = result.col(&Var::new("active_assays")).unwrap();
    let cid_col = result.col(&Var::new("cid")).unwrap();
    rows.sort_by(|a, b| {
        b[n_col]
            .as_num(&cat.dict)
            .partial_cmp(&a[n_col].as_num(&cat.dict))
            .unwrap()
    });
    for row in rows.iter().take(5) {
        let cid = match row[cid_col] {
            rapida::sparql::Cell::Term(id) => cat.dict.lexical(id),
            _ => continue,
        };
        println!(
            "  {:<55} {:>4.0} active assays",
            cid,
            row[n_col].as_num(&cat.dict).unwrap_or(0.0)
        );
    }

    // MG6: per-(compound, gene) counts vs per-compound totals — a
    // multi-grouping query over overlapping 3-star patterns.
    let mg6 = rapida::datagen::query("MG6");
    let (result, metrics, plan) = run_query(&engine, &mg6.sparql, &cat, &mr).expect("MG6 runs");
    println!(
        "\nMG6 (assays per compound-gene vs per compound): {} rows in {} cycles",
        result.len(),
        plan.cycles()
    );
    println!(
        "  shuffled {:.2} MB, materialized {:.2} MB",
        metrics.total_shuffle_bytes() as f64 / 1e6,
        metrics.total_output_bytes() as f64 / 1e6
    );

    // Share of each compound's activity concentrated in its top gene: the
    // kind of derived analysis the paper's biology use cases motivate.
    let cg = result.col(&Var::new("aPerCG")).unwrap();
    let ct = result.col(&Var::new("aPerC")).unwrap();
    let cid_col = result.col(&Var::new("cid")).unwrap();
    let mut top: std::collections::HashMap<String, f64> = Default::default();
    for row in &result.rows {
        let (Some(per_cg), Some(per_c)) =
            (row[cg].as_num(&cat.dict), row[ct].as_num(&cat.dict))
        else {
            continue;
        };
        if per_c == 0.0 {
            continue;
        }
        let cid = match row[cid_col] {
            rapida::sparql::Cell::Term(id) => cat.dict.lexical(id),
            _ => continue,
        };
        let share = per_cg / per_c;
        let e = top.entry(cid).or_insert(0.0);
        if share > *e {
            *e = share;
        }
    }
    let focused = top.values().filter(|&&s| s >= 0.5).count();
    println!(
        "  {} of {} compounds have ≥50% of their assays on a single gene",
        focused,
        top.len()
    );
}
