//! Quickstart: load RDF data, run a SPARQL analytical query with the
//! paper's engine (RAPIDAnalytics), and inspect the MapReduce workflow it
//! compiled to.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rapida::prelude::*;

fn main() {
    // 1. Build an RDF graph. Any N-Triples source works; here we parse a
    //    small inline document about products and offers.
    let ntriples = r#"
<http://shop/p1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://shop/Phone> .
<http://shop/p1> <http://shop/feature> <http://shop/5G> .
<http://shop/p1> <http://shop/feature> <http://shop/OLED> .
<http://shop/p2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://shop/Phone> .
<http://shop/o1> <http://shop/product> <http://shop/p1> .
<http://shop/o1> <http://shop/price> "599.99" .
<http://shop/o2> <http://shop/product> <http://shop/p1> .
<http://shop/o2> <http://shop/price> "579.00" .
<http://shop/o3> <http://shop/product> <http://shop/p2> .
<http://shop/o3> <http://shop/price> "399.00" .
"#;
    let triples = rapida::rdf::parse_ntriples(ntriples).expect("valid N-Triples");
    let mut graph = Graph::new();
    graph.insert_term_triples(&triples);
    println!("loaded {} triples", graph.len());

    // 2. Load the graph into the catalog: this materializes both storage
    //    layouts (vertical partitions for the Hive engines, subject
    //    triplegroups for the RAPID engines) into a simulated DFS.
    let cat = DataCatalog::load(&graph);
    let mr = MrEngine::new(cat.dfs.clone());

    // 3. An analytical query: average phone price per feature vs overall —
    //    two related groupings over overlapping graph patterns (the paper's
    //    AQ1 shape).
    let sparql = r#"
        PREFIX shop: <http://shop/>
        SELECT ?f ?cntF ?sumF ?cntT ?sumT {
          { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
            { ?p2 a shop:Phone ; shop:feature ?f .
              ?o2 shop:product ?p2 ; shop:price ?pr2 . } GROUP BY ?f }
          { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
            { ?p1 a shop:Phone .
              ?o1 shop:product ?p1 ; shop:price ?pr . } }
        }"#;

    // 4. Execute with RAPIDAnalytics.
    let engine = RapidAnalytics::default();
    let (result, metrics, plan) = run_query(&engine, sparql, &cat, &mr).expect("query runs");

    println!(
        "\n{} compiled the query into {} MR cycles ({} full, {} map-only):",
        engine.name(),
        plan.cycles(),
        metrics.full_cycles(),
        metrics.map_only_cycles()
    );
    for job in &metrics.jobs {
        println!("  {job}");
    }

    println!("\nresults:\n{}", result.pretty(&cat.dict));

    // 5. Compare against the direct in-memory reference evaluator.
    let reference = evaluate(&parse_query(sparql).unwrap(), &graph);
    assert_eq!(
        result.canonicalized(&cat.dict),
        reference.canonicalized(&graph.dict),
        "engine output matches the reference evaluator"
    );
    println!("verified against the reference evaluator ✓");
}
