//! Research-funding disparity analytics over PubMed-like data — the
//! ReDD-Observatory use case from the paper's introduction: compare
//! per-country grant-funded publication counts with global totals (MG11),
//! and demonstrate the engine-by-engine cost difference on the
//! multi-valued-property query MG13 whose intermediate blow-up broke naive
//! Hive in the paper.
//!
//! ```text
//! cargo run --release --example research_funding
//! ```

use rapida::prelude::*;
use rapida::sparql::Var;

fn main() {
    let graph = rapida::datagen::generate_pubmed(&rapida::datagen::PubmedConfig::default());
    println!("PubMed-like dataset: {} triples", graph.len());
    let cat = DataCatalog::load(&graph);
    let mr = MrEngine::new(cat.dfs.clone());

    // MG11: grant-funded journal publications per country vs total.
    let q = rapida::datagen::query("MG11");
    let engine = RapidAnalytics::default();
    let (result, metrics, _) = run_query(&engine, &q.sparql, &cat, &mr).expect("MG11 runs");
    println!("\nMG11: {} countries, {} cycles", result.len(), metrics.cycles());
    let c_col = result.col(&Var::new("c")).unwrap();
    let cnt_c = result.col(&Var::new("cntC")).unwrap();
    let cnt_t = result.col(&Var::new("cntT")).unwrap();
    let mut rows = result.rows.clone();
    rows.sort_by(|a, b| {
        b[cnt_c]
            .as_num(&cat.dict)
            .partial_cmp(&a[cnt_c].as_num(&cat.dict))
            .unwrap()
    });
    for row in &rows {
        let country = match row[c_col] {
            rapida::sparql::Cell::Term(id) => cat.dict.lexical(id),
            _ => continue,
        };
        let share = row[cnt_c].as_num(&cat.dict).unwrap_or(0.0)
            / row[cnt_t].as_num(&cat.dict).unwrap_or(1.0);
        let c = country.rsplit('/').next().unwrap_or(&country);
        println!("  {c:<12} {:5.1}% of all grants", share * 100.0);
    }

    // MG13: MeSH headings per (author, pub-type) vs per pub-type — the
    // query whose naive-Hive evaluation ran out of HDFS space in the paper.
    // Here we measure the materialization each engine needs.
    let q = rapida::datagen::query("MG13");
    println!("\nMG13 materialized intermediate volume by engine:");
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(HiveNaive::default()),
        Box::new(HiveMqo::default()),
        Box::new(RapidPlus::default()),
        Box::new(RapidAnalytics::default()),
    ];
    let mut naive_mb = 0.0;
    let mut ra_mb = 0.0;
    for engine in &engines {
        let (_, metrics, _) = run_query(engine.as_ref(), &q.sparql, &cat, &mr).expect("runs");
        let mb = metrics.total_output_bytes() as f64 / 1e6;
        if engine.name().contains("Naive") && engine.name().contains("Hive") {
            naive_mb = mb;
        }
        if engine.name() == "RAPIDAnalytics" {
            ra_mb = mb;
        }
        println!(
            "  {:<16} {:>8.2} MB materialized over {} cycles",
            engine.name(),
            mb,
            metrics.cycles()
        );
    }
    println!(
        "\nnaive Hive materializes {:.1}x more than RAPIDAnalytics — the blow-up\n\
         that exhausted HDFS space at the paper's 230 GB scale",
        naive_mb / ra_mb.max(1e-9)
    );
}
